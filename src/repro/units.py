"""Unit conversion helpers and light-weight physical-quantity utilities.

The simulation works internally in SI-adjacent engineering units that
match the paper's instrumentation:

* time in **seconds** (float, simulated time),
* current in **milliamperes** (INA219 reports mA),
* voltage in **volts**,
* charge in **milliampere-hours**,
* energy in **milliwatt-hours**,
* power in **milliwatts**.

Keeping the units explicit in function names (``ma_to_a`` rather than an
overloaded ``convert``) follows the explicit-code rule of the project's
style guide and removes a whole class of unit bugs.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError

SECONDS_PER_HOUR = 3600.0
MS_PER_SECOND = 1000.0


def ms_to_s(milliseconds: float) -> float:
    """Convert milliseconds to seconds."""
    return milliseconds / MS_PER_SECOND


def s_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * MS_PER_SECOND


def ma_to_a(milliamps: float) -> float:
    """Convert milliamperes to amperes."""
    return milliamps / 1000.0


def a_to_ma(amps: float) -> float:
    """Convert amperes to milliamperes."""
    return amps * 1000.0


def mw_to_w(milliwatts: float) -> float:
    """Convert milliwatts to watts."""
    return milliwatts / 1000.0


def w_to_mw(watts: float) -> float:
    """Convert watts to milliwatts."""
    return watts * 1000.0


def power_mw(current_ma: float, voltage_v: float) -> float:
    """Instantaneous power in milliwatts from current (mA) and voltage (V).

    P[mW] = I[mA] * V[V] because mA * V = mW.
    """
    return current_ma * voltage_v


def energy_mwh(current_ma: float, voltage_v: float, duration_s: float) -> float:
    """Energy in milliwatt-hours consumed at a constant current.

    This is the computation the paper describes: "the energy consumption
    is computed using the sensor measurement value and the measurement
    duration" combined with the device's voltage characteristics.
    """
    if duration_s < 0:
        raise ConfigError(f"duration must be non-negative, got {duration_s}")
    return power_mw(current_ma, voltage_v) * duration_s / SECONDS_PER_HOUR


def charge_mah(current_ma: float, duration_s: float) -> float:
    """Charge in milliampere-hours delivered at a constant current."""
    if duration_s < 0:
        raise ConfigError(f"duration must be non-negative, got {duration_s}")
    return current_ma * duration_s / SECONDS_PER_HOUR


def dbm_to_mw(dbm: float) -> float:
    """Convert a power level in dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(milliwatts: float) -> float:
    """Convert a power level in milliwatts to dBm."""
    if milliwatts <= 0:
        raise ConfigError(f"power must be positive to express in dBm, got {milliwatts}")
    return 10.0 * math.log10(milliwatts)


def ppm_drift(seconds: float, ppm: float) -> float:
    """Clock drift accumulated over ``seconds`` at ``ppm`` parts-per-million.

    A DS3231 is accurate to about +/-2 ppm; over one hour that is 7.2 ms.
    """
    return seconds * ppm * 1e-6


def relative_error(measured: float, truth: float) -> float:
    """Signed relative error ``(measured - truth) / truth``.

    Raises :class:`~repro.errors.ConfigError` when ``truth`` is zero since
    the relative error is undefined there.
    """
    if truth == 0:
        raise ConfigError("relative error undefined for zero ground truth")
    return (measured - truth) / truth


def percent(fraction: float) -> float:
    """Express a fraction as a percentage."""
    return fraction * 100.0


def clamp(value: float, lower: float, upper: float) -> float:
    """Clamp ``value`` into the inclusive range [lower, upper]."""
    if lower > upper:
        raise ConfigError(f"empty clamp range [{lower}, {upper}]")
    return max(lower, min(upper, value))
