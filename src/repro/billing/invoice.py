"""Invoice structures.

An invoice is the billing engine's output for one device over one
period: individual lines (optionally) plus totals that separate home
consumption from roaming consumption reported via host aggregators —
the paper's "consolidated billing".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BillingError


@dataclass(frozen=True)
class InvoiceLine:
    """One priced ledger record."""

    measured_at: float
    energy_mwh: float
    price_per_mwh: float
    roaming: bool

    @property
    def cost(self) -> float:
        """Line cost in currency units."""
        return self.energy_mwh * self.price_per_mwh


@dataclass
class Invoice:
    """Per-device billing summary.

    Attributes:
        device: Billed device name.
        period: (start, end) of the billing period.
        lines: Priced records (may be omitted for summary-only bills).
        home_energy_mwh / roaming_energy_mwh: Split totals.
        total_cost: Sum over all lines.
    """

    device: str
    period: tuple[float, float]
    lines: list[InvoiceLine] = field(default_factory=list)
    home_energy_mwh: float = 0.0
    roaming_energy_mwh: float = 0.0
    total_cost: float = 0.0

    @property
    def total_energy_mwh(self) -> float:
        """Home plus roaming energy."""
        return self.home_energy_mwh + self.roaming_energy_mwh

    def add_line(self, line: InvoiceLine) -> None:
        """Append one record and update the totals."""
        start, end = self.period
        if not start <= line.measured_at <= end:
            raise BillingError(
                f"record at {line.measured_at} outside period [{start}, {end}]"
            )
        self.lines.append(line)
        if line.roaming:
            self.roaming_energy_mwh += line.energy_mwh
        else:
            self.home_energy_mwh += line.energy_mwh
        self.total_cost += line.cost

    def render(self) -> str:
        """Human-readable text form."""
        start, end = self.period
        header = (
            f"Invoice for {self.device}  period [{start:.1f}s, {end:.1f}s]\n"
            f"  home energy:    {self.home_energy_mwh:.6f} mWh\n"
            f"  roaming energy: {self.roaming_energy_mwh:.6f} mWh\n"
            f"  total cost:     {self.total_cost:.8f}\n"
            f"  lines:          {len(self.lines)}"
        )
        return header
