"""Tariff models.

A tariff maps a timestamp to a price per mWh.  Two concrete forms cover
the experiments: a flat price and a repeating time-of-use schedule
(peak / off-peak), which the device's schedule optimizer plans against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.errors import BillingError


class Tariff(Protocol):
    """Anything that can price energy at a point in time."""

    def price_per_mwh(self, at_time: float) -> float:
        """Price of one mWh consumed at ``at_time``."""
        ...


@dataclass(frozen=True)
class FlatTariff:
    """One constant price."""

    rate_per_mwh: float = 0.0002

    def __post_init__(self) -> None:
        if self.rate_per_mwh < 0:
            raise BillingError(f"rate must be >= 0, got {self.rate_per_mwh}")

    def price_per_mwh(self, at_time: float) -> float:
        """Constant price regardless of time."""
        return self.rate_per_mwh


@dataclass(frozen=True)
class TimeOfUseTariff:
    """Repeating peak / off-peak schedule.

    Attributes:
        period_s: Schedule repetition period (e.g. 86400 for daily).
        peak_start_s: Peak window start, offset into the period.
        peak_end_s: Peak window end, offset into the period.
        peak_rate: Price inside the peak window.
        offpeak_rate: Price outside it.
    """

    period_s: float = 86400.0
    peak_start_s: float = 8 * 3600.0
    peak_end_s: float = 20 * 3600.0
    peak_rate: float = 0.0004
    offpeak_rate: float = 0.0001

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise BillingError(f"period must be positive, got {self.period_s}")
        if not 0 <= self.peak_start_s < self.peak_end_s <= self.period_s:
            raise BillingError(
                f"peak window [{self.peak_start_s}, {self.peak_end_s}] "
                f"must fit in period {self.period_s}"
            )
        if self.peak_rate < 0 or self.offpeak_rate < 0:
            raise BillingError("rates must be >= 0")

    def price_per_mwh(self, at_time: float) -> float:
        """Peak or off-peak price depending on the period offset."""
        offset = at_time % self.period_s
        if self.peak_start_s <= offset < self.peak_end_s:
            return self.peak_rate
        return self.offpeak_rate
