"""Grid-loss allocation: billing the Fig. 5 gap.

The feeder consistently measures more than the devices report (ohmic
losses + leakage — experiment E1).  Someone pays for that energy; the
standard utility practice is to allocate the measured loss to consumers
*pro rata* to their consumption.  This module computes, per window, the
loss as (feeder − device sum, floored at 0) and splits it across the
reporting devices in proportion to their share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aggregator.aggregation import ReportAggregator
from repro.errors import BillingError


@dataclass
class LossAllocation:
    """Loss energy apportioned per device over a period.

    Attributes:
        period: (start, end) of the allocation.
        per_device_ma_s: Allocated loss in mA·s per device (current x
            window length, summed; multiply by voltage/3600 for mWh).
        total_loss_ma_s: Sum across devices.
        windows_used: Complete windows contributing.
    """

    period: tuple[float, float]
    per_device_ma_s: dict[str, float] = field(default_factory=dict)
    windows_used: int = 0

    @property
    def total_loss_ma_s(self) -> float:
        """Total allocated loss."""
        return sum(self.per_device_ma_s.values())

    def share_of(self, device: str) -> float:
        """One device's fraction of the allocated loss."""
        total = self.total_loss_ma_s
        if total <= 0:
            return 0.0
        return self.per_device_ma_s.get(device, 0.0) / total

    def loss_energy_mwh(self, device: str, voltage_v: float) -> float:
        """Convert one device's allocation to energy at a voltage."""
        if voltage_v <= 0:
            raise BillingError(f"voltage must be positive, got {voltage_v}")
        # mA*s x V = mW*s; divide by 3600 for mWh.
        return self.per_device_ma_s.get(device, 0.0) * voltage_v / 3600.0


def allocate_losses(
    aggregation: ReportAggregator,
    period: tuple[float, float],
) -> LossAllocation:
    """Allocate per-window feeder losses pro rata to device reports.

    Only complete windows (feeder sample + at least one report) inside
    the period contribute.  Negative per-window gaps (sensor noise can
    put the device sum above the feeder briefly) clamp to zero rather
    than crediting devices with negative loss.
    """
    start, end = period
    if end < start:
        raise BillingError(f"empty allocation period [{start}, {end}]")
    allocation = LossAllocation(period=period)
    window_s = aggregation.window_s
    for window in aggregation.complete_windows():
        if not start <= window.start < end:
            continue
        reported_sum = window.reported_sum_ma
        if reported_sum <= 0 or window.feeder_ma is None:
            continue
        loss_ma = max(0.0, window.feeder_ma - reported_sum)
        if loss_ma == 0.0:
            allocation.windows_used += 1
            continue
        for device, reported in window.reported_ma.items():
            share = reported / reported_sum
            allocation.per_device_ma_s[device] = (
                allocation.per_device_ma_s.get(device, 0.0)
                + loss_ma * share * window_s
            )
        allocation.windows_used += 1
    return allocation
