"""Inter-aggregator settlement for roaming consumption.

When a device consumes in a host network, the *electricity* flowed from
the host's feeder while the *bill* lands at the device's home network.
The operators must settle: the home network owes the host for the energy
physically delivered there.  Every input needed is already in the
ledger — roaming records carry both ``network`` (the billing home) and
``host`` (where the electrons came from).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.billing.tariff import Tariff
from repro.chain.ledger import Blockchain
from repro.errors import BillingError


@dataclass(frozen=True)
class SettlementEntry:
    """Net position between one (home, host) pair."""

    home: str
    host: str
    energy_mwh: float
    amount: float


@dataclass
class SettlementMatrix:
    """All pairwise roaming positions for one period."""

    period: tuple[float, float]
    entries: list[SettlementEntry] = field(default_factory=list)

    def owed_by(self, home: str) -> float:
        """Total a home network owes hosts for its devices' roaming."""
        return sum(e.amount for e in self.entries if e.home == home)

    def owed_to(self, host: str) -> float:
        """Total a host network is owed for hosting foreign devices."""
        return sum(e.amount for e in self.entries if e.host == host)

    def net_position(self, operator: str) -> float:
        """Receivable minus payable for one operator (positive = creditor)."""
        return self.owed_to(operator) - self.owed_by(operator)

    def render(self) -> str:
        """Human-readable settlement statement."""
        if not self.entries:
            return "(no roaming consumption in the period)"
        lines = []
        for entry in sorted(self.entries, key=lambda e: (e.home, e.host)):
            lines.append(
                f"{entry.home} owes {entry.host}: {entry.amount:.8f} "
                f"for {entry.energy_mwh:.6f} mWh delivered"
            )
        return "\n".join(lines)


class SettlementEngine:
    """Computes the roaming settlement matrix from the ledger.

    Args:
        chain: The common blockchain.
        wholesale_tariff: Price the host charges the home operator per
            mWh delivered (normally below the retail tariff billed to
            the device — the spread is the home operator's margin).
    """

    def __init__(self, chain: Blockchain, wholesale_tariff: Tariff) -> None:
        self._chain = chain
        self._tariff = wholesale_tariff

    def settle(self, period: tuple[float, float]) -> SettlementMatrix:
        """Aggregate every roaming record in ``period`` into positions.

        The period is half-open, ``[start, end)``: a record measured at
        exactly ``end`` belongs to the *next* period, so adjacent
        settlement runs never bill the same record twice.
        """
        start, end = period
        if end < start:
            raise BillingError(f"inverted settlement period [{start}, {end})")
        if end == start:
            raise BillingError(f"empty settlement period [{start}, {end})")
        totals: dict[tuple[str, str], tuple[float, float]] = {}
        for block in self._chain:
            for record in block.records:
                if not record.get("roaming"):
                    continue
                measured_at = float(record["measured_at"])
                if not start <= measured_at < end:
                    continue
                home = str(record.get("network"))
                host = str(record.get("host"))
                if home == host:
                    raise BillingError(
                        f"roaming record at {measured_at} has home == host ({home})"
                    )
                energy = float(record["energy_mwh"])
                amount = energy * self._tariff.price_per_mwh(measured_at)
                prev_energy, prev_amount = totals.get((home, host), (0.0, 0.0))
                totals[(home, host)] = (prev_energy + energy, prev_amount + amount)
        matrix = SettlementMatrix(period=period)
        for (home, host), (energy, amount) in totals.items():
            matrix.entries.append(
                SettlementEntry(home=home, host=host, energy_mwh=energy, amount=amount)
            )
        return matrix
