"""Consolidated billing over the ledger.

The home aggregator bills each of its member devices from the common
blockchain: every stored record of the device — whether it arrived
directly or was forwarded by a host aggregator while roaming — is priced
under the device's tariff.  Roaming records are recognised by the
``roaming`` flag the aggregator stamps when a record arrives via the
backhaul.
"""

from __future__ import annotations

from typing import Any

from repro.billing.invoice import Invoice, InvoiceLine
from repro.billing.tariff import Tariff
from repro.chain.ledger import Blockchain
from repro.errors import BillingError
from repro.ids import DeviceId


class BillingEngine:
    """Prices ledger records into invoices.

    Args:
        chain: The ledger to bill from.
        tariff: Default tariff applied to every device.
    """

    def __init__(self, chain: Blockchain, tariff: Tariff) -> None:
        self._chain = chain
        self._tariff = tariff
        self._device_tariffs: dict[str, Tariff] = {}

    def set_device_tariff(self, device_id: DeviceId, tariff: Tariff) -> None:
        """Override the tariff for one device."""
        self._device_tariffs[device_id.uid] = tariff

    def _tariff_for(self, device_uid: str) -> Tariff:
        return self._device_tariffs.get(device_uid, self._tariff)

    def invoice(
        self,
        device_id: DeviceId,
        period: tuple[float, float],
        include_lines: bool = True,
    ) -> Invoice:
        """Build the invoice for one device over ``period``.

        Records are deduplicated by sequence number — the ledger may
        legitimately hold a record twice when a QoS-1 retransmission
        raced an Ack, and double-billing would be a correctness bug.

        The period is half-open, ``[start, end)``, so a record at
        exactly ``end`` is billed by the next period's invoice, never
        both.
        """
        start, end = period
        if end < start:
            raise BillingError(f"inverted billing period [{start}, {end})")
        if end == start:
            raise BillingError(f"empty billing period [{start}, {end})")
        tariff = self._tariff_for(device_id.uid)
        invoice = Invoice(device=device_id.name, period=period)
        seen_sequences: set[int] = set()
        for record in self._chain.records_for_device(device_id.uid):
            measured_at = float(record["measured_at"])
            if not start <= measured_at < end:
                continue
            sequence = int(record["sequence"])
            if sequence in seen_sequences:
                continue
            seen_sequences.add(sequence)
            line = InvoiceLine(
                measured_at=measured_at,
                energy_mwh=float(record["energy_mwh"]),
                price_per_mwh=tariff.price_per_mwh(measured_at),
                roaming=bool(record.get("roaming", False)),
            )
            invoice.add_line(line)
        if not include_lines:
            invoice.lines = []
        return invoice

    def settlement_summary(self, period: tuple[float, float]) -> dict[str, Any]:
        """Totals per device name over a half-open period ``[start, end)``."""
        start, end = period
        totals: dict[str, float] = {}
        for block in self._chain:
            for record in block.records:
                measured_at = float(record["measured_at"])
                if start <= measured_at < end:
                    name = record["device"]
                    totals[name] = totals.get(name, 0.0) + float(record["energy_mwh"])
        return {"period": [start, end], "energy_mwh_by_device": totals}
