"""Billing engine.

The architecture "enables billing at the home network" with roaming
consumption consolidated there (§II-C).  The engine prices ledger
records under a tariff and produces per-device invoices that break out
home vs roaming consumption.
"""

from repro.billing.engine import BillingEngine
from repro.billing.invoice import Invoice, InvoiceLine
from repro.billing.losses import LossAllocation, allocate_losses
from repro.billing.settlement import SettlementEngine, SettlementEntry, SettlementMatrix
from repro.billing.tariff import FlatTariff, Tariff, TimeOfUseTariff

__all__ = [
    "BillingEngine",
    "Invoice",
    "InvoiceLine",
    "LossAllocation",
    "allocate_losses",
    "SettlementEngine",
    "SettlementEntry",
    "SettlementMatrix",
    "FlatTariff",
    "Tariff",
    "TimeOfUseTariff",
]
