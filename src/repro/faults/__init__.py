"""Deterministic fault injection and retry/backoff resilience.

The paper's architecture claims billing stays consistent *through*
disconnection and mobility (§II-B buffering, Fig. 6 backfill).  This
package makes the failure path a first-class workload:

* :mod:`repro.faults.injectors` — per-link fault state (blackout
  windows, drop/duplicate/delay/corrupt draws) the transports consult,
* :mod:`repro.faults.plan` — :class:`~repro.faults.plan.FaultPlan`,
  a named, seeded schedule of faults against the kernel,
* :mod:`repro.faults.retry` — :class:`~repro.faults.retry.RetryPolicy`
  (timeout + jittered exponential backoff, bounded attempts) shared by
  the device report path and the roaming verify path.

Determinism invariant: every fault draw comes from a named
:class:`~repro.sim.rng.RngStreams` stream, so a chaos run replays
byte-identically for a given master seed.
"""

from repro.faults.injectors import FaultAction, LinkFaultInjector, LinkFaultSpec
from repro.faults.plan import FaultPlan, ScheduledFault
from repro.faults.retry import RetryPolicy, RetryTimer

__all__ = [
    "FaultAction",
    "FaultPlan",
    "LinkFaultInjector",
    "LinkFaultSpec",
    "RetryPolicy",
    "RetryTimer",
    "ScheduledFault",
]
