"""Deterministic fault schedules against the discrete-event kernel.

A :class:`FaultPlan` is the chaos counterpart of a workload: named
faults — link blackout windows, stationary link noise, aggregator
crash+restart, backhaul partitions — armed at absolute simulated times.
Because every draw a fault makes comes from a named kernel stream and
every edge is a scheduled event, a chaos run replays exactly for a given
master seed; the plan is data the experiment can print next to its
results.

The plan is deliberately loose-coupled: it drives the fault surfaces the
transports expose (``set_fault_injector``, ``set_down``, ``crash_for``,
``set_partition``) rather than knowing scenario internals, so any wired
world — paper testbed, scaled sweep, custom rig — can be put under
fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.errors import ConfigError
from repro.faults.injectors import LinkFaultInjector, LinkFaultSpec
from repro.monitoring.counters import CounterBank

if TYPE_CHECKING:
    from repro.aggregator.unit import AggregatorUnit
    from repro.ids import AggregatorId
    from repro.net.backhaul import BackhaulMesh
    from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class ScheduledFault:
    """One named fault window of the plan (for printing/assertions)."""

    name: str
    kind: str
    start_at: float
    end_at: float | None

    @property
    def duration_s(self) -> float | None:
        """Window length, or None for open-ended faults."""
        if self.end_at is None:
            return None
        return self.end_at - self.start_at


@dataclass
class FaultPlan:
    """A deterministic schedule of named faults.

    Args:
        simulator: The kernel faults are scheduled on.
        counters: Shared counter bank (one is created when omitted);
            injectors made by :meth:`make_injector` record into it too.
    """

    simulator: "Simulator"
    counters: CounterBank = field(default_factory=CounterBank)
    _faults: list[ScheduledFault] = field(default_factory=list, repr=False)

    @property
    def faults(self) -> list[ScheduledFault]:
        """Every fault window scheduled so far (copy)."""
        return list(self._faults)

    def _record(self, name: str, kind: str, start_at: float, end_at: float | None) -> None:
        if not name:
            raise ConfigError("fault name must be non-empty")
        if any(f.name == name for f in self._faults):
            raise ConfigError(f"duplicate fault name {name!r}")
        if end_at is not None and end_at <= start_at:
            raise ConfigError(
                f"fault {name!r}: end {end_at} must be after start {start_at}"
            )
        self._faults.append(ScheduledFault(name, kind, start_at, end_at))

    def _activate(self, name: str) -> None:
        self.counters.increment(f"fault.{name}.activations")

    # -- injector factory ------------------------------------------------

    def make_injector(
        self, name: str, spec: LinkFaultSpec | None = None
    ) -> LinkFaultInjector:
        """Build an injector wired to this plan's counters and rng.

        The injector draws from the kernel stream ``fault:<name>`` so
        adding further injectors never perturbs existing fault
        sequences.
        """
        return LinkFaultInjector(
            name,
            self.simulator.rng.stream(f"fault:{name}"),
            spec=spec,
            counters=self.counters,
        )

    # -- link faults -----------------------------------------------------

    def link_blackout(
        self,
        name: str,
        injector: LinkFaultInjector,
        start_at: float,
        duration_s: float,
    ) -> None:
        """Black out the injector's link for a window.

        Everything crossing the link during ``[start_at, start_at +
        duration_s)`` is lost; the paper's §II-B buffering covers the
        window on the device side.
        """
        if duration_s <= 0:
            raise ConfigError(f"blackout duration must be positive, got {duration_s}")
        self._record(name, "link_blackout", start_at, start_at + duration_s)

        def _start() -> None:
            self._activate(name)
            injector.start_blackout()

        self.simulator.schedule(start_at, _start, label=f"fault:{name}:start")
        self.simulator.schedule(
            start_at + duration_s, injector.end_blackout, label=f"fault:{name}:end"
        )

    def link_noise(
        self,
        name: str,
        injector: LinkFaultInjector,
        spec: LinkFaultSpec,
        start_at: float,
        duration_s: float | None = None,
    ) -> None:
        """Apply stationary drop/duplicate/delay/corrupt noise.

        The injector's spec switches to ``spec`` at ``start_at`` and
        back to lossless at the window end (or never, when
        ``duration_s`` is None).
        """

        def _start() -> None:
            self._activate(name)
            injector.set_spec(spec)

        end_at = None if duration_s is None else start_at + duration_s
        self._record(name, "link_noise", start_at, end_at)
        self.simulator.schedule(start_at, _start, label=f"fault:{name}:start")
        if end_at is not None:
            self.simulator.schedule(
                end_at,
                lambda: injector.set_spec(LinkFaultSpec()),
                label=f"fault:{name}:end",
            )

    # -- aggregator faults -----------------------------------------------

    def aggregator_crash(
        self,
        name: str,
        unit: "AggregatorUnit",
        at: float,
        outage_s: float,
    ) -> None:
        """Crash one aggregator at ``at``; it restarts after ``outage_s``.

        Volatile state (registry, TDMA grants, aggregation windows) is
        lost; the ledger survives; devices re-register through the
        normal Fig. 3 sequence when their next report draws
        ``Nack(NOT_A_MEMBER)``.
        """
        self._record(name, "aggregator_crash", at, at + outage_s)

        def _crash() -> None:
            self._activate(name)
            unit.crash_for(outage_s)

        self.simulator.schedule(at, _crash, label=f"fault:{name}")

    # -- backhaul faults -------------------------------------------------

    def backhaul_partition(
        self,
        name: str,
        mesh: "BackhaulMesh",
        groups: Iterable[Iterable["AggregatorId"]],
        start_at: float,
        duration_s: float,
    ) -> None:
        """Partition the backhaul mesh into isolated groups, then heal."""
        if duration_s <= 0:
            raise ConfigError(f"partition duration must be positive, got {duration_s}")
        frozen = [set(group) for group in groups]
        self._record(name, "backhaul_partition", start_at, start_at + duration_s)

        def _split() -> None:
            self._activate(name)
            mesh.set_partition(frozen)

        self.simulator.schedule(start_at, _split, label=f"fault:{name}:start")
        self.simulator.schedule(
            start_at + duration_s, mesh.heal_partition, label=f"fault:{name}:end"
        )

    # -- reporting -------------------------------------------------------

    def describe(self) -> list[dict]:
        """Plan as plain dicts (for experiment reports and traces)."""
        return [
            {
                "name": f.name,
                "kind": f.kind,
                "start_at": f.start_at,
                "end_at": f.end_at,
                "activations": self.counters.get(f"fault.{f.name}.activations"),
            }
            for f in sorted(self._faults, key=lambda f: (f.start_at, f.name))
        ]
