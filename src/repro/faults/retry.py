"""Retry policy: timeout + exponential backoff with jitter.

Recovery paths (the device's report path, the liaison's membership
verify) share one policy shape: wait ``timeout_s`` for an answer, retry
with exponentially growing, jittered backoff, give up after
``max_attempts``.  Jitter draws come from a *named* kernel stream so
retry storms de-synchronise without breaking determinism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry parameters shared by the resilience paths.

    Attributes:
        timeout_s: How long one attempt waits for its answer.
        base_backoff_s: Backoff after the first failed attempt.
        backoff_factor: Multiplier applied per further failure.
        max_backoff_s: Backoff ceiling.
        max_attempts: Total attempts (the first try counts as one).
        jitter: Fractional uniform jitter applied to each backoff
            (0.1 means +-10 %); 0 disables jitter.
    """

    timeout_s: float = 2.0
    base_backoff_s: float = 0.5
    backoff_factor: float = 2.0
    max_backoff_s: float = 30.0
    max_attempts: int = 5
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ConfigError(f"timeout must be positive, got {self.timeout_s}")
        if self.base_backoff_s <= 0:
            raise ConfigError(
                f"base backoff must be positive, got {self.base_backoff_s}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"backoff factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_backoff_s < self.base_backoff_s:
            raise ConfigError(
                f"max backoff {self.max_backoff_s} < base {self.base_backoff_s}"
            )
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff_s(self, failures: int, rng: np.random.Generator | None = None) -> float:
        """Backoff before the attempt following ``failures`` failures.

        ``failures`` is 1 after the first failed attempt.  With an
        ``rng`` the delay is jittered uniformly within ``+-jitter``.
        """
        if failures < 1:
            raise ConfigError(f"failures must be >= 1, got {failures}")
        delay = min(
            self.base_backoff_s * self.backoff_factor ** (failures - 1),
            self.max_backoff_s,
        )
        if self.jitter > 0 and rng is not None:
            delay *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        return delay

    def exhausted(self, attempts: int) -> bool:
        """Whether ``attempts`` tries have used up the budget."""
        return attempts >= self.max_attempts


class RetryTimer:
    """Drives one retryable operation on the kernel.

    Call :meth:`arm` after each attempt is sent; when no
    :meth:`settle` arrives within the policy timeout, ``attempt_fn``
    is re-invoked after the backoff, until the policy is exhausted and
    ``on_give_up`` fires.

    Args:
        simulator: The kernel (anything with ``call_later``).
        policy: The retry policy.
        attempt_fn: Re-sends the operation (one further attempt).
        on_give_up: Called once when the attempt budget is spent.
        rng: Stream for backoff jitter (None disables jitter).
        label: Event label for traces.
    """

    def __init__(
        self,
        simulator: Any,
        policy: RetryPolicy,
        attempt_fn: Callable[[], None],
        on_give_up: Callable[[], None],
        rng: np.random.Generator | None = None,
        label: str = "retry",
    ) -> None:
        self._sim = simulator
        self._policy = policy
        self._attempt_fn = attempt_fn
        self._on_give_up = on_give_up
        self._rng = rng
        self._label = label
        self._attempts = 0
        self._settled = False
        self._event: Any | None = None

    @property
    def attempts(self) -> int:
        """Attempts made so far (including the initial one)."""
        return self._attempts

    @property
    def settled(self) -> bool:
        """True once the operation succeeded or gave up."""
        return self._settled

    def arm(self) -> None:
        """Note one attempt sent; start its response timeout."""
        if self._settled:
            return
        self._attempts += 1
        self._event = self._sim.call_later(
            self._policy.timeout_s, self._on_timeout, label=f"{self._label}:timeout"
        )

    def settle(self) -> None:
        """The answer arrived: cancel any pending timeout.  Idempotent."""
        self._settled = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _on_timeout(self) -> None:
        if self._settled:
            return
        self._event = None
        if self._policy.exhausted(self._attempts):
            self._settled = True
            self._on_give_up()
            return
        backoff = self._policy.backoff_s(self._attempts, self._rng)
        self._event = self._sim.call_later(
            backoff, self._retry, label=f"{self._label}:backoff"
        )

    def _retry(self) -> None:
        if self._settled:
            return
        self._event = None
        self._attempt_fn()
        self.arm()
