"""Deterministic per-link fault injectors.

A :class:`LinkFaultInjector` sits on one communication path (a device's
radio link, a broker's downlink, a backhaul edge) and answers two
questions the transport layers ask:

* :meth:`packet_blocked` — frame-level: is this transmission lost?
  True throughout a blackout window and with probability ``drop_p``
  otherwise (the Wi-Fi path adds this *on top of* the channel's
  RSSI-driven error model).
* :meth:`message_verdict` — message-level: pass, drop, duplicate,
  delay or corrupt this routed message?  Corrupted frames fail their
  integrity check at the receiver and are discarded — observably
  distinct from silent drops, identical in effect.

All draws come from the generator handed in at construction (derive it
from the kernel's :class:`~repro.sim.rng.RngStreams`), so fault
sequences replay exactly for a given master seed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.monitoring.counters import CounterBank


class FaultAction(enum.Enum):
    """Verdict for one message crossing a faulted link."""

    PASS = "pass"
    DROP = "drop"
    DUPLICATE = "duplicate"
    DELAY = "delay"
    CORRUPT = "corrupt"


@dataclass(frozen=True)
class LinkFaultSpec:
    """Stationary fault probabilities of one link.

    Attributes:
        drop_p: Probability a frame/message is silently lost.
        duplicate_p: Probability a message is delivered twice.
        delay_p: Probability a message is held back.
        delay_s: Extra latency applied to delayed messages.
        corrupt_p: Probability a message arrives corrupted (and is
            discarded by the receiver's integrity check).
    """

    drop_p: float = 0.0
    duplicate_p: float = 0.0
    delay_p: float = 0.0
    delay_s: float = 0.5
    corrupt_p: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_p", "duplicate_p", "delay_p", "corrupt_p"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if self.drop_p + self.duplicate_p + self.delay_p + self.corrupt_p > 1.0:
            raise ConfigError("fault probabilities must sum to <= 1")
        if self.delay_s < 0:
            raise ConfigError(f"delay must be >= 0, got {self.delay_s}")

    @property
    def lossless(self) -> bool:
        """True when every probability is zero."""
        return (
            self.drop_p == 0.0
            and self.duplicate_p == 0.0
            and self.delay_p == 0.0
            and self.corrupt_p == 0.0
        )


class LinkFaultInjector:
    """Fault state of one link: a blackout flag plus stationary noise.

    Args:
        name: Counter prefix (e.g. ``"uplink:device1"``).
        rng: Random stream for fault draws.
        spec: Stationary fault probabilities (default: none).
        counters: Shared counter bank (one is created when omitted).
    """

    def __init__(
        self,
        name: str,
        rng: np.random.Generator,
        spec: LinkFaultSpec | None = None,
        counters: CounterBank | None = None,
    ) -> None:
        if not name:
            raise ConfigError("injector name must be non-empty")
        self._name = name
        self._rng = rng
        self._spec = spec or LinkFaultSpec()
        self._counters = counters if counters is not None else CounterBank()
        self._blackout = False

    @property
    def name(self) -> str:
        """Counter prefix of this injector."""
        return self._name

    @property
    def spec(self) -> LinkFaultSpec:
        """Current stationary fault probabilities."""
        return self._spec

    @property
    def counters(self) -> CounterBank:
        """The counter bank faults are recorded into."""
        return self._counters

    @property
    def blackout_active(self) -> bool:
        """Whether the link is currently blacked out."""
        return self._blackout

    def set_spec(self, spec: LinkFaultSpec) -> None:
        """Swap the stationary fault probabilities (plan window edges)."""
        self._spec = spec

    def start_blackout(self) -> None:
        """Black the link out: everything is lost until :meth:`end_blackout`."""
        self._blackout = True
        self._counters.increment(f"{self._name}.blackouts")

    def end_blackout(self) -> None:
        """Lift the blackout."""
        self._blackout = False

    # -- transport-layer queries ----------------------------------------

    def packet_blocked(self) -> bool:
        """Frame-level loss verdict (blackout, else one ``drop_p`` draw)."""
        if self._blackout:
            self._counters.increment(f"{self._name}.blackout_losses")
            return True
        if self._spec.drop_p > 0 and float(self._rng.random()) < self._spec.drop_p:
            self._counters.increment(f"{self._name}.drops")
            return True
        return False

    def message_verdict(self) -> FaultAction:
        """Message-level verdict: one draw across all fault modes."""
        if self._blackout:
            self._counters.increment(f"{self._name}.blackout_losses")
            return FaultAction.DROP
        if self._spec.lossless:
            return FaultAction.PASS
        draw = float(self._rng.random())
        edge = self._spec.drop_p
        if draw < edge:
            self._counters.increment(f"{self._name}.drops")
            return FaultAction.DROP
        edge += self._spec.duplicate_p
        if draw < edge:
            self._counters.increment(f"{self._name}.duplicates")
            return FaultAction.DUPLICATE
        edge += self._spec.delay_p
        if draw < edge:
            self._counters.increment(f"{self._name}.delays")
            return FaultAction.DELAY
        edge += self._spec.corrupt_p
        if draw < edge:
            self._counters.increment(f"{self._name}.corruptions")
            return FaultAction.CORRUPT
        return FaultAction.PASS

    @property
    def extra_delay_s(self) -> float:
        """Latency added to messages the verdict delayed."""
        return self._spec.delay_s
