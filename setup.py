"""Legacy setup shim.

The offline build environment lacks the ``wheel`` package, so PEP-517
editable installs (which run ``bdist_wheel``) fail.  This shim lets
``pip install -e .`` take the legacy ``setup.py develop`` path.  All
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
