"""End-to-end integration: full pipelines across every subsystem."""

import pytest

from repro import BillingEngine, FlatTariff, audit_chain, build_paper_testbed
from repro.baselines import NaiveDeviceLog
from repro.chain import Block
from repro.chain.store import InMemoryBlockStore
from repro.device.app import DemandPredictor, RemoteManagement
from repro.ids import DeviceId
from repro.workloads.mobility import MobilityTrace
from repro.workloads.scenarios import build_paper_testbed as build


class TestMeteringToBillingPipeline:
    @pytest.fixture(scope="class")
    def world(self):
        scenario = build_paper_testbed(seed=21)
        scenario.run_until(30.0)
        return scenario

    def test_chain_energy_matches_device_meters(self, world):
        # Energy in the ledger equals what devices measured (to within
        # records still in flight at the end of the run).
        for name in ("device1", "device2"):
            device = world.device(name)
            ledger_mwh = world.chain.total_energy_mwh(device.device_id.uid)
            measured_mwh = device.meter.total_energy_mwh
            assert ledger_mwh == pytest.approx(measured_mwh, rel=0.02)

    def test_billing_engine_invoices_from_chain(self, world):
        engine = BillingEngine(world.chain, FlatTariff(1.0))
        invoice = engine.invoice(DeviceId("device1"), (0.0, 30.0))
        assert invoice.total_energy_mwh > 0
        assert invoice.total_cost == pytest.approx(invoice.total_energy_mwh)
        assert invoice.roaming_energy_mwh == 0.0  # never left home

    def test_device_side_bill_matches_aggregator_side(self, world):
        device = world.device("device1")
        engine = BillingEngine(world.chain, FlatTariff(1.0))
        invoice = engine.invoice(device.device_id, (0.0, 30.0))
        # The device's own meter total, priced flat, approximates the bill.
        own_cost = device.meter.total_energy_mwh * 1.0
        assert invoice.total_cost == pytest.approx(own_cost, rel=0.02)

    def test_audit_clean_after_run(self, world):
        assert audit_chain(world.chain).clean

    def test_remote_management_status(self, world):
        manager = RemoteManagement(world.device("device1"))
        status = manager.handle("status")
        assert status["device"] == "device1"
        assert status["phase"] == "reporting"
        assert status["reports_sent"] > 0
        assert manager.handle("ping")["pong"] is True

    def test_demand_prediction_on_ledger_series(self, world):
        records = world.chain.records_for_device(DeviceId("device1").uid)
        records.sort(key=lambda r: r["measured_at"])
        predictor = DemandPredictor()
        for record in records[:200]:
            predictor.observe(float(record["energy_mwh"]))
        prediction = predictor.predict()
        mean_energy = sum(float(r["energy_mwh"]) for r in records[:200]) / 200
        assert prediction == pytest.approx(mean_energy, rel=1.0)


class TestRoamingBilling:
    def test_consolidated_billing_across_networks(self):
        scenario = build(seed=31, enter_devices=False)
        scenario.schedule_mobility(
            "device1",
            MobilityTrace.single_move(
                home="agg1", destination="agg2",
                enter_home_at=0.0, leave_home_at=14.0, idle_s=5.0,
            ),
        )
        scenario.run_until(40.0)
        engine = BillingEngine(scenario.chain, FlatTariff(1.0))
        invoice = engine.invoice(DeviceId("device1"), (0.0, 40.0))
        # Both home and roaming consumption billed at the home network.
        assert invoice.home_energy_mwh > 0
        assert invoice.roaming_energy_mwh > 0
        device = scenario.device("device1")
        assert invoice.total_energy_mwh == pytest.approx(
            device.meter.total_energy_mwh, rel=0.03
        )


class TestTamperEndToEnd:
    def test_blockchain_detects_what_naive_log_misses(self):
        scenario = build_paper_testbed(seed=41)
        scenario.run_until(15.0)
        chain = scenario.chain

        # Mirror the ledger into the naive baseline.
        naive = NaiveDeviceLog()
        for block in chain:
            for record in block.records:
                naive.append(record)

        # Attack both stores identically: zero out one record.
        store = chain._store
        assert isinstance(store, InMemoryBlockStore)
        victim = store.get(2)
        forged_records = [dict(r) for r in victim.records]
        forged_records[0]["energy_mwh"] = 0.0
        store.tamper(2, Block(victim.header, tuple(forged_records), victim.block_hash))
        naive.tamper(0, energy_mwh=0.0)

        # The naive log claims everything is fine; the chain does not.
        assert naive.audit() is True
        report = audit_chain(chain)
        assert not report.clean
        assert report.first_bad_height == 2


class TestScaledWorld:
    def test_sixteen_devices_across_four_networks(self):
        from repro.workloads.scenarios import build_scaled_scenario

        scenario = build_scaled_scenario(4, 4, seed=51)
        scenario.run_until(15.0)
        scenario.chain.validate()
        # Every device registered and reported.
        for name, device in scenario.devices.items():
            assert device.fsm.can_report, name
            assert scenario.chain.records_for_device(device.device_id.uid), name
        # No anomalies beyond startup artifacts.
        for unit in scenario.aggregators.values():
            stats = unit.verifier.stats
            assert stats.network_anomalies <= max(3, 0.05 * stats.network_checks)
