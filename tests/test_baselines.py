"""Tests for the centralized and naive baselines."""

import pytest

from repro.baselines import CentralizedMeteringBaseline, NaiveDeviceLog
from repro.errors import StorageError
from repro.grid import FeederMeter, GridNetwork
from repro.hw.powerline import WireSegment
from repro.ids import AggregatorId, DeviceId
from repro.sim import Simulator


def make_metered_network():
    sim = Simulator(seed=0)
    network = GridNetwork(
        AggregatorId("agg1"),
        default_segment=WireSegment(resistance_ohms=0.0, leakage_ma=0.0),
    )
    network.attach(DeviceId("d1"), lambda t: 100.0, 0.0)
    meter = FeederMeter(network, sim.rng.stream("meter"))
    return sim, network, meter


class TestCentralized:
    def test_samples_and_energy(self):
        sim, _, meter = make_metered_network()
        baseline = CentralizedMeteringBaseline(sim, meter, sample_interval_s=0.1)
        baseline.start()
        sim.run_until(10.0)
        assert len(baseline.series) == 100
        # ~100 mA at 5 V for 10 s.
        expected = 100.0 * 5.0 * 10.0 / 3600.0
        assert baseline.energy_mwh == pytest.approx(expected, rel=0.05)

    def test_stop_halts_sampling(self):
        sim, _, meter = make_metered_network()
        baseline = CentralizedMeteringBaseline(sim, meter)
        baseline.start()
        sim.schedule(1.05, baseline.stop)
        sim.run_until(5.0)
        assert len(baseline.series) == 10

    def test_cannot_attribute_per_device(self):
        sim, _, meter = make_metered_network()
        baseline = CentralizedMeteringBaseline(sim, meter)
        with pytest.raises(NotImplementedError):
            baseline.attribute_to_device("d1")

    def test_blind_to_departed_device(self):
        # The motivating failure: once the device leaves, the location
        # meter reads (near) zero; consumption elsewhere is invisible.
        sim, network, meter = make_metered_network()
        baseline = CentralizedMeteringBaseline(sim, meter, sample_interval_s=0.1)
        baseline.start()
        sim.schedule(5.0, lambda: network.detach(DeviceId("d1")))
        sim.run_until(10.0)
        after = baseline.series.mean(6.0, 10.0)
        before = baseline.series.mean(0.0, 5.0)
        assert before > 90.0
        assert abs(after) < 2.0


class TestNaiveDeviceLog:
    def test_append_and_totals(self):
        log = NaiveDeviceLog()
        log.append({"device": "d1", "energy_mwh": 2.0})
        log.append({"device": "d2", "energy_mwh": 3.0})
        assert len(log) == 2
        assert log.total_energy_mwh() == pytest.approx(5.0)
        assert log.total_energy_mwh("d1") == pytest.approx(2.0)

    def test_tamper_succeeds_silently(self):
        log = NaiveDeviceLog()
        log.append({"device": "d1", "energy_mwh": 10.0})
        log.tamper(0, energy_mwh=0.0)
        assert log.total_energy_mwh() == 0.0
        # ... and the 'audit' is content-free.
        assert log.audit() is True

    def test_tamper_bounds(self):
        with pytest.raises(StorageError):
            NaiveDeviceLog().tamper(0, x=1)

    def test_records_are_copies(self):
        log = NaiveDeviceLog()
        original = {"device": "d1", "energy_mwh": 1.0}
        log.append(original)
        original["energy_mwh"] = 99.0
        assert log.total_energy_mwh() == 1.0
        exported = log.records()
        exported[0]["energy_mwh"] = 77.0
        assert log.total_energy_mwh() == 1.0
