"""Tests for the composed MeteringDevice (mobility, buffering, protocol)."""

import pytest

from repro.errors import ProtocolError
from repro.ids import DeviceId
from repro.protocol.device_fsm import DevicePhase
from repro.workloads.mobility import MobilityTrace
from repro.workloads.scenarios import build_paper_testbed


def roaming_world(seed=0, leave_at=12.0, idle=5.0, end=30.0):
    scenario = build_paper_testbed(seed=seed, enter_devices=False)
    scenario.schedule_mobility(
        "device1",
        MobilityTrace.single_move(
            home="agg1", destination="agg2", enter_home_at=0.0,
            leave_home_at=leave_at, idle_s=idle,
        ),
    )
    scenario.run_until(end)
    return scenario


class TestMobility:
    def test_temporary_membership_granted(self):
        scenario = roaming_world()
        device = scenario.device("device1")
        assert device.fsm.is_roaming
        assert device.fsm.master.aggregator.name == "agg1"
        assert device.fsm.temporary.aggregator.name == "agg2"

    def test_handshake_durations_recorded(self):
        scenario = roaming_world()
        device = scenario.device("device1")
        assert len(device.handshakes) == 2
        first, second = device.handshakes
        assert first.network.name == "agg1" and not first.temporary
        assert second.network.name == "agg2" and second.temporary
        assert 5.0 < second.duration_s < 7.0

    def test_consumption_stops_in_transit(self):
        scenario = roaming_world(seed=1)
        # During the idle gap no measurements are produced at all.
        records = scenario.chain.records_for_device(DeviceId("device1").uid)
        gap_records = [
            r for r in records if 12.05 < float(r["measured_at"]) < 16.95
        ]
        assert gap_records == []

    def test_buffered_data_forwarded_home(self):
        scenario = roaming_world(seed=2)
        agg1 = scenario.aggregator("agg1")
        # The home aggregator received data from the host network.
        assert agg1.liaison.stats.forwarded_received > 0
        roaming_records = [
            r
            for r in scenario.chain.records_for_device(DeviceId("device1").uid)
            if r.get("roaming")
        ]
        assert roaming_records
        assert all(r["network"] == "agg1" for r in roaming_records)
        assert all(r.get("host") == "agg2" for r in roaming_records)

    def test_host_does_not_store_roaming_records_as_its_own(self):
        scenario = roaming_world(seed=2)
        own_records_at_host = [
            r
            for r in scenario.chain.records_for_device(DeviceId("device1").uid)
            if not r.get("roaming") and r["network"] == "agg2"
        ]
        assert own_records_at_host == []

    def test_no_consumption_lost_across_move(self):
        scenario = roaming_world(seed=3)
        device = scenario.device("device1")
        records = scenario.chain.records_for_device(DeviceId("device1").uid)
        sequences = {int(r["sequence"]) for r in records}
        # Every measurement the device ever took either reached the chain
        # or is still pending transmission/flush.
        produced = device.meter.sensor.readings_taken
        pending = device.store.pending
        in_flight = produced - len(sequences) - pending
        assert in_flight <= 20  # at most a couple of windows in transit

    def test_home_membership_retained_while_roaming(self):
        scenario = roaming_world(seed=4)
        agg1 = scenario.aggregator("agg1")
        assert agg1.registry.is_master_member(DeviceId("device1"))

    def test_temporary_membership_expires_after_leaving(self):
        scenario = roaming_world(seed=5, end=29.0)
        device = scenario.device("device1")
        device.leave_network()
        agg2 = scenario.aggregator("agg2")
        scenario.run_until(35.0)
        assert agg2.registry.get(DeviceId("device1")) is None

    def test_return_home_needs_no_registration(self):
        scenario = roaming_world(seed=6, end=29.0)
        device = scenario.device("device1")
        device.leave_network()
        scenario.simulator.schedule(
            31.0, lambda: device.enter_network(scenario.aggregator("agg1"))
        )
        scenario.run_until(45.0)
        assert device.fsm.phase is DevicePhase.REPORTING
        assert not device.fsm.is_roaming
        third = device.handshakes[-1]
        assert not third.temporary
        assert third.duration_s is not None


class TestStackGuards:
    def test_double_enter_rejected(self):
        scenario = build_paper_testbed(seed=0, enter_devices=False)
        device = scenario.device("device1")
        agg1 = scenario.aggregator("agg1")
        scenario.simulator.schedule(0.0, lambda: device.enter_network(agg1))
        scenario.run_until(10.0)
        with pytest.raises(ProtocolError):
            device.enter_network(scenario.aggregator("agg2"))

    def test_leave_without_enter_rejected(self):
        scenario = build_paper_testbed(seed=0, enter_devices=False)
        with pytest.raises(ProtocolError):
            scenario.device("device1").leave_network()

    def test_true_current_includes_mcu(self):
        scenario = build_paper_testbed(seed=0, enter_devices=False)
        device = scenario.device("device1")
        # Load profile (sinusoid mean 120 at t where sin=0) plus MCU idle.
        assert device.true_current_ma(0.0) == pytest.approx(120.0 + 20.0)

    def test_energy_accounting_close_to_truth(self):
        scenario = build_paper_testbed(seed=7)
        scenario.run_until(15.0)
        meter = scenario.device("device1").meter
        assert meter.total_energy_mwh == pytest.approx(
            meter.total_true_energy_mwh, rel=0.02
        )
