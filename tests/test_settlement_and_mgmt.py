"""Tests for inter-aggregator settlement and management over MQTT."""

import pytest

from repro.billing import FlatTariff, SettlementEngine
from repro.chain import Blockchain
from repro.errors import BillingError, ProtocolError
from repro.ids import DeviceId
from repro.workloads.mobility import MobilityTrace
from repro.workloads.scenarios import build_paper_testbed


def record(home, host, energy, at=1.0, seq=0):
    return {
        "device": "d1", "device_uid": "u1", "sequence": seq,
        "measured_at": at, "energy_mwh": energy,
        "roaming": True, "network": home, "host": host,
    }


class TestSettlementUnit:
    def make_chain(self):
        chain = Blockchain()
        chain.append("agg1", 1.0, [
            record("agg1", "agg2", 2.0, at=1.0, seq=0),
            record("agg1", "agg2", 3.0, at=2.0, seq=1),
            record("agg2", "agg1", 1.0, at=1.5, seq=0),
            # Non-roaming records never settle.
            {"device": "d9", "device_uid": "u9", "sequence": 0,
             "measured_at": 1.0, "energy_mwh": 100.0,
             "roaming": False, "network": "agg1"},
        ])
        return chain

    def test_pairwise_positions(self):
        engine = SettlementEngine(self.make_chain(), FlatTariff(1.0))
        matrix = engine.settle((0.0, 10.0))
        assert matrix.owed_by("agg1") == pytest.approx(5.0)
        assert matrix.owed_to("agg2") == pytest.approx(5.0)
        assert matrix.owed_by("agg2") == pytest.approx(1.0)

    def test_net_positions_balance(self):
        engine = SettlementEngine(self.make_chain(), FlatTariff(1.0))
        matrix = engine.settle((0.0, 10.0))
        total = matrix.net_position("agg1") + matrix.net_position("agg2")
        assert total == pytest.approx(0.0)
        assert matrix.net_position("agg2") == pytest.approx(4.0)

    def test_period_filter(self):
        engine = SettlementEngine(self.make_chain(), FlatTariff(1.0))
        matrix = engine.settle((0.0, 1.2))
        assert matrix.owed_by("agg1") == pytest.approx(2.0)

    def test_render(self):
        engine = SettlementEngine(self.make_chain(), FlatTariff(1.0))
        text = engine.settle((0.0, 10.0)).render()
        assert "agg1 owes agg2" in text
        assert engine.settle((50.0, 60.0)).render().startswith("(no roaming")

    def test_invalid_period(self):
        engine = SettlementEngine(self.make_chain(), FlatTariff(1.0))
        with pytest.raises(BillingError):
            engine.settle((5.0, 1.0))

    def test_inverted_and_empty_periods_distinguished(self):
        # Regression: an inverted period used to report "empty
        # settlement period", hiding a caller bug behind a benign
        # message; a genuinely empty (zero-length) one is its own error.
        engine = SettlementEngine(self.make_chain(), FlatTariff(1.0))
        with pytest.raises(BillingError, match="inverted"):
            engine.settle((5.0, 1.0))
        with pytest.raises(BillingError, match="empty"):
            engine.settle((5.0, 5.0))

    def test_boundary_record_never_settles_twice(self):
        # Regression for double billing: both period ends used to be
        # inclusive, so a record at exactly the cut settled in both
        # adjacent periods.  Periods are half-open [start, end) now.
        chain = Blockchain()
        chain.append("agg1", 1.0, [record("agg1", "agg2", 2.0, at=2.0, seq=0)])
        engine = SettlementEngine(chain, FlatTariff(1.0))
        first = engine.settle((0.0, 2.0)).owed_by("agg1")
        second = engine.settle((2.0, 4.0)).owed_by("agg1")
        assert first + second == pytest.approx(2.0)
        assert first == pytest.approx(0.0)
        assert second == pytest.approx(2.0)

    def test_home_equals_host_rejected(self):
        chain = Blockchain()
        chain.append("agg1", 1.0, [record("agg1", "agg1", 1.0)])
        engine = SettlementEngine(chain, FlatTariff(1.0))
        with pytest.raises(BillingError):
            engine.settle((0.0, 10.0))

    def test_settlement_from_real_roaming_run(self):
        scenario = build_paper_testbed(seed=31, enter_devices=False)
        scenario.schedule_mobility(
            "device1",
            MobilityTrace.single_move(
                home="agg1", destination="agg2",
                enter_home_at=0.0, leave_home_at=12.0, idle_s=5.0,
            ),
        )
        scenario.run_until(35.0)
        engine = SettlementEngine(scenario.chain, FlatTariff(0.0001))
        matrix = engine.settle((0.0, 35.0))
        # agg1's device roamed at agg2: agg1 owes agg2, nothing back.
        assert matrix.owed_by("agg1") > 0
        assert matrix.owed_by("agg2") == 0.0
        assert matrix.net_position("agg2") > 0


class TestRemoteManagementOverMqtt:
    @pytest.fixture()
    def world(self):
        scenario = build_paper_testbed(seed=41)
        scenario.run_until(12.0)
        return scenario

    def test_status_round_trip(self, world):
        agg1 = world.aggregator("agg1")
        request_id = agg1.manage_device(DeviceId("device1"), "status")
        world.run_until(13.0)
        response = agg1.mgmt_responses[request_id]
        assert response.ok
        assert response.payload["device"] == "device1"
        assert response.payload["phase"] == "reporting"

    def test_ping(self, world):
        agg1 = world.aggregator("agg1")
        request_id = agg1.manage_device(DeviceId("device2"), "ping")
        world.run_until(13.0)
        assert world.aggregator("agg1").mgmt_responses[request_id].payload["pong"]

    def test_set_interval_changes_reporting_rate(self, world):
        agg1 = world.aggregator("agg1")
        device = world.device("device1")
        request_id = agg1.manage_device(
            DeviceId("device1"), "set-interval", argument=0.5
        )
        world.run_until(13.0)
        assert agg1.mgmt_responses[request_id].ok
        samples_before = device.firmware.samples_taken
        world.run_until(23.0)
        # 10 s at 2 Hz instead of 10 Hz.
        assert device.firmware.samples_taken - samples_before == pytest.approx(20, abs=2)

    def test_unknown_command_reports_error(self, world):
        agg1 = world.aggregator("agg1")
        request_id = agg1.manage_device(DeviceId("device1"), "self-destruct")
        world.run_until(13.0)
        response = agg1.mgmt_responses[request_id]
        assert not response.ok
        assert "unknown" in response.payload["error"]

    def test_bad_interval_argument_reports_error(self, world):
        agg1 = world.aggregator("agg1")
        request_id = agg1.manage_device(DeviceId("device1"), "set-interval")
        world.run_until(13.0)
        assert not agg1.mgmt_responses[request_id].ok

    def test_non_member_rejected(self, world):
        agg1 = world.aggregator("agg1")
        with pytest.raises(ProtocolError):
            agg1.manage_device(DeviceId("device3"), "ping")  # member of agg2
