"""Tests for the fault-injection subsystem (repro.faults + hooks)."""

import numpy as np
import pytest

from repro.errors import ConfigError, ProtocolError
from repro.faults import (
    FaultAction,
    FaultPlan,
    LinkFaultInjector,
    LinkFaultSpec,
    RetryPolicy,
    RetryTimer,
)
from repro.ids import AggregatorId, DeviceId
from repro.monitoring import CounterBank
from repro.net.backhaul import BackhaulLink, BackhaulMesh
from repro.protocol.messages import (
    MembershipVerifyRequest,
    MembershipVerifyResponse,
)
from repro.sim import Simulator

AGG1 = AggregatorId("agg1")
AGG2 = AggregatorId("agg2")


class TestRetryPolicy:
    def test_backoff_grows_exponentially_to_ceiling(self):
        policy = RetryPolicy(
            base_backoff_s=1.0, backoff_factor=2.0, max_backoff_s=5.0, jitter=0.0
        )
        assert policy.backoff_s(1) == 1.0
        assert policy.backoff_s(2) == 2.0
        assert policy.backoff_s(3) == 4.0
        assert policy.backoff_s(4) == 5.0  # clamped
        assert policy.backoff_s(10) == 5.0

    def test_jitter_bounded_and_deterministic(self):
        policy = RetryPolicy(base_backoff_s=1.0, jitter=0.1)
        rng = np.random.default_rng(0)
        delays = [policy.backoff_s(1, rng) for _ in range(50)]
        assert all(0.9 <= d <= 1.1 for d in delays)
        rng2 = np.random.default_rng(0)
        assert delays == [policy.backoff_s(1, rng2) for _ in range(50)]

    def test_exhausted(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigError):
            RetryPolicy(timeout_s=0)
        with pytest.raises(ConfigError):
            RetryPolicy(base_backoff_s=-1)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(max_backoff_s=0.1, base_backoff_s=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ConfigError):
            RetryPolicy().backoff_s(0)


class TestRetryTimer:
    def make_timer(self, sim, **overrides):
        policy = RetryPolicy(
            timeout_s=1.0, base_backoff_s=0.5, jitter=0.0, max_attempts=3, **overrides
        )
        attempts, gave_up = [], []
        timer = RetryTimer(
            sim,
            policy,
            attempt_fn=lambda: attempts.append(sim.now),
            on_give_up=lambda: gave_up.append(sim.now),
        )
        return timer, attempts, gave_up

    def test_settle_stops_retries(self):
        sim = Simulator()
        timer, attempts, gave_up = self.make_timer(sim)
        timer.arm()
        sim.schedule(0.5, timer.settle)
        sim.run()
        assert attempts == [] and gave_up == []
        assert timer.settled and timer.attempts == 1

    def test_retries_then_gives_up(self):
        sim = Simulator()
        timer, attempts, gave_up = self.make_timer(sim)
        timer.arm()
        sim.run()
        # Attempt 1 at 0, times out at 1, backoff 0.5 -> retry at 1.5;
        # times out at 2.5, backoff 1.0 -> retry at 3.5; final timeout
        # at 4.5 exhausts the 3-attempt budget.
        assert attempts == [1.5, 3.5]
        assert gave_up == [4.5]
        assert timer.settled and timer.attempts == 3

    def test_arm_after_settle_is_inert(self):
        sim = Simulator()
        timer, attempts, gave_up = self.make_timer(sim)
        timer.arm()
        timer.settle()
        timer.arm()
        sim.run()
        assert attempts == [] and gave_up == []


class TestLinkFaultSpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            LinkFaultSpec(drop_p=1.5)
        with pytest.raises(ConfigError):
            LinkFaultSpec(drop_p=0.6, duplicate_p=0.6)
        with pytest.raises(ConfigError):
            LinkFaultSpec(delay_s=-1.0)
        assert LinkFaultSpec().lossless
        assert not LinkFaultSpec(corrupt_p=0.1).lossless


class TestLinkFaultInjector:
    def test_blackout_blocks_everything(self):
        injector = LinkFaultInjector("link", np.random.default_rng(0))
        assert not injector.packet_blocked()
        injector.start_blackout()
        assert injector.blackout_active
        assert all(injector.packet_blocked() for _ in range(20))
        assert injector.message_verdict() is FaultAction.DROP
        injector.end_blackout()
        assert not injector.packet_blocked()
        assert injector.counters.get("link.blackouts") == 1
        assert injector.counters.get("link.blackout_losses") == 21

    def test_lossless_spec_never_draws(self):
        injector = LinkFaultInjector("link", np.random.default_rng(0))
        assert all(
            injector.message_verdict() is FaultAction.PASS for _ in range(50)
        )

    def test_verdict_frequencies_and_counters(self):
        spec = LinkFaultSpec(drop_p=0.25, duplicate_p=0.25, delay_p=0.25, corrupt_p=0.25)
        injector = LinkFaultInjector("link", np.random.default_rng(1), spec=spec)
        verdicts = [injector.message_verdict() for _ in range(400)]
        counts = {action: verdicts.count(action) for action in FaultAction}
        assert counts[FaultAction.PASS] == 0
        for action in (
            FaultAction.DROP,
            FaultAction.DUPLICATE,
            FaultAction.DELAY,
            FaultAction.CORRUPT,
        ):
            assert 50 <= counts[action] <= 150
        bank = injector.counters
        assert bank.get("link.drops") == counts[FaultAction.DROP]
        assert bank.get("link.corruptions") == counts[FaultAction.CORRUPT]

    def test_deterministic_for_same_stream(self):
        spec = LinkFaultSpec(drop_p=0.5)
        a = LinkFaultInjector("x", np.random.default_rng(7), spec=spec)
        b = LinkFaultInjector("x", np.random.default_rng(7), spec=spec)
        assert [a.packet_blocked() for _ in range(100)] == [
            b.packet_blocked() for _ in range(100)
        ]


class TestCounterBank:
    def test_increment_and_snapshot(self):
        bank = CounterBank()
        bank.increment("a.x")
        bank.increment("a.y", 3)
        bank.increment("b.z")
        assert bank.get("a.x") == 1
        assert bank.get("missing") == 0
        assert bank.snapshot("a.") == {"a.x": 1, "a.y": 3}
        assert bank.total("a.") == 4
        assert sorted(bank.names) == ["a.x", "a.y", "b.z"]

    def test_negative_increment_rejected(self):
        with pytest.raises(ConfigError):
            CounterBank().increment("a", -1)


class TestFaultPlan:
    def test_blackout_window_toggles_injector(self):
        sim = Simulator()
        plan = FaultPlan(sim)
        injector = plan.make_injector("radio")
        plan.link_blackout("b1", injector, start_at=1.0, duration_s=2.0)
        sim.run_until(0.5)
        assert not injector.blackout_active
        sim.run_until(1.5)
        assert injector.blackout_active
        sim.run_until(3.5)
        assert not injector.blackout_active
        assert plan.counters.get("fault.b1.activations") == 1

    def test_link_noise_window_swaps_spec(self):
        sim = Simulator()
        plan = FaultPlan(sim)
        injector = plan.make_injector("edge")
        plan.link_noise("n1", injector, LinkFaultSpec(drop_p=0.5), 1.0, duration_s=2.0)
        sim.run_until(1.5)
        assert injector.spec.drop_p == 0.5
        sim.run_until(3.5)
        assert injector.spec.lossless

    def test_duplicate_and_invalid_names_rejected(self):
        sim = Simulator()
        plan = FaultPlan(sim)
        injector = plan.make_injector("x")
        plan.link_blackout("b", injector, 0.0, 1.0)
        with pytest.raises(ConfigError):
            plan.link_blackout("b", injector, 5.0, 1.0)
        with pytest.raises(ConfigError):
            plan.link_noise("", injector, LinkFaultSpec(), 0.0)
        with pytest.raises(ConfigError):
            plan.link_blackout("c", injector, 0.0, -1.0)

    def test_describe_sorted_by_start(self):
        sim = Simulator()
        plan = FaultPlan(sim)
        injector = plan.make_injector("x")
        plan.link_blackout("late", injector, 10.0, 1.0)
        plan.link_noise("early", injector, LinkFaultSpec(drop_p=0.1), 2.0)
        described = plan.describe()
        assert [d["name"] for d in described] == ["early", "late"]
        assert described[1]["end_at"] == 11.0
        assert described[0]["end_at"] is None


class TestBackhaulFaults:
    def make_mesh(self):
        sim = Simulator()
        mesh = BackhaulMesh(sim)
        inbox = {"agg1": [], "agg2": []}
        mesh.add_aggregator(AGG1, lambda s, p: inbox["agg1"].append(p))
        mesh.add_aggregator(AGG2, lambda s, p: inbox["agg2"].append(p))
        mesh.connect(BackhaulLink(AGG1, AGG2, 0.001))
        return sim, mesh, inbox

    def test_partition_severs_and_heals(self):
        sim, mesh, inbox = self.make_mesh()
        mesh.set_partition([{AGG1}, {AGG2}])
        mesh.send(AGG1, AGG2, "lost")
        sim.run()
        assert inbox["agg2"] == []
        assert mesh.messages_dropped == 1
        mesh.heal_partition()
        mesh.send(AGG1, AGG2, "ok")
        sim.run()
        assert inbox["agg2"] == ["ok"]

    def test_partition_must_cover_all_nodes(self):
        from repro.errors import BackhaulError

        _, mesh, _ = self.make_mesh()
        with pytest.raises(BackhaulError):
            mesh.set_partition([{AGG1}])
        with pytest.raises(BackhaulError):
            mesh.set_partition([{AGG1, AGG2}, {AGG2}])

    def test_node_down_drops_in_flight(self):
        sim, mesh, inbox = self.make_mesh()
        mesh.send(AGG1, AGG2, "in-flight")
        mesh.set_node_down(AGG2, True)
        sim.run()
        # Delivered-at arrival check: the destination died first.
        assert inbox["agg2"] == []
        mesh.set_node_down(AGG2, False)
        mesh.send(AGG1, AGG2, "after")
        sim.run()
        assert inbox["agg2"] == ["after"]

    def test_link_injector_drops_on_edge(self):
        sim, mesh, inbox = self.make_mesh()
        injector = LinkFaultInjector(
            "edge", np.random.default_rng(0), spec=LinkFaultSpec(drop_p=1.0)
        )
        mesh.install_link_injector(AGG1, AGG2, injector)
        mesh.send(AGG1, AGG2, "doomed")
        sim.run()
        assert inbox["agg2"] == []
        assert injector.counters.get("edge.drops") == 1


class TestVerifyRetry:
    def make_pair(self, retry=None):
        from repro.aggregator.roaming import RoamingLiaison

        sim = Simulator()
        mesh = BackhaulMesh(sim)
        host = RoamingLiaison(AGG2, mesh, retry=retry)
        master = RoamingLiaison(AGG1, mesh)
        inbox = {"host": [], "master": []}
        mesh.add_aggregator(AGG2, lambda s, p: inbox["host"].append(p))
        mesh.add_aggregator(AGG1, lambda s, p: inbox["master"].append(p))
        mesh.connect(BackhaulLink(AGG1, AGG2, 0.001))
        return sim, mesh, host, master, inbox

    def test_unanswered_verify_expires_with_negative_verdict(self):
        # Regression: pending verifies used to leak forever when the
        # master never answered (crashed master, partitioned mesh).
        policy = RetryPolicy(timeout_s=1.0, base_backoff_s=0.5, jitter=0.0, max_attempts=2)
        sim, mesh, host, _, inbox = self.make_pair(retry=policy)
        mesh.set_partition([{AGG1}, {AGG2}])
        verdicts = []
        host.request_verification(DeviceId("d1"), AGG1, verdicts.append)
        sim.run()
        assert host.pending_verify_count == 0
        assert host.stats.verify_timeouts == 1
        assert host.stats.verify_retries == 1
        assert verdicts and verdicts[0].valid is False
        assert inbox["master"] == []

    def test_retry_reaches_master_after_transient_loss(self):
        policy = RetryPolicy(timeout_s=1.0, base_backoff_s=0.5, jitter=0.0, max_attempts=4)
        sim, mesh, host, master, inbox = self.make_pair(retry=policy)
        mesh.set_partition([{AGG1}, {AGG2}])
        sim.schedule(1.2, mesh.heal_partition)
        verdicts = []
        host.request_verification(DeviceId("d1"), AGG1, verdicts.append)
        sim.run_until(2.0)
        assert len(inbox["master"]) == 1
        request = inbox["master"][0]
        assert isinstance(request, MembershipVerifyRequest)
        master.answer_verification(request, is_member=True)
        sim.run_until(3.0)
        host.handle_verify_response(inbox["host"][0])
        assert verdicts and verdicts[0].valid
        assert host.pending_verify_count == 0
        assert host.stats.verify_timeouts == 0

    def test_late_response_after_expiry_is_discarded(self):
        policy = RetryPolicy(timeout_s=1.0, base_backoff_s=0.5, jitter=0.0, max_attempts=1)
        sim, mesh, host, _, _ = self.make_pair(retry=policy)
        mesh.set_partition([{AGG1}, {AGG2}])
        verdicts = []
        host.request_verification(DeviceId("d1"), AGG1, verdicts.append)
        sim.run()
        assert host.stats.verify_timeouts == 1
        late = MembershipVerifyResponse(DeviceId("d1"), AGG1, True)
        host.handle_verify_response(late)  # must not raise
        assert host.stats.verify_responses_late == 1
        assert len(verdicts) == 1  # the synthesized negative only

    def test_truly_unsolicited_response_still_rejected(self):
        _, _, host, _, _ = self.make_pair(retry=RetryPolicy())
        with pytest.raises(ProtocolError):
            host.handle_verify_response(
                MembershipVerifyResponse(DeviceId("never-asked"), AGG1, True)
            )
