"""Tests for the ledger, stores, audit and consensus."""

import pytest

from repro.chain import (
    Block,
    Blockchain,
    InMemoryBlockStore,
    JsonlBlockStore,
    PoaConsensus,
    Validator,
    audit_chain,
)
from repro.chain.hashing import GENESIS_HASH
from repro.errors import BlockValidationError, ChainError, ConsensusError


def record(device="d1", energy=1.0, seq=0):
    return {"device": device, "device_uid": device * 2, "energy_mwh": energy, "sequence": seq}


class TestBlockchain:
    def test_append_advances_height_and_tip(self):
        chain = Blockchain()
        first = chain.append("agg1", 1.0, [record()])
        assert chain.height == 1
        assert chain.tip_hash == first.block_hash

    def test_blocks_link(self):
        chain = Blockchain()
        a = chain.append("agg1", 1.0, [record(seq=0)])
        b = chain.append("agg1", 2.0, [record(seq=1)])
        assert b.header.previous_hash == a.block_hash
        assert a.header.previous_hash == GENESIS_HASH

    def test_validate_clean_chain(self):
        chain = Blockchain()
        for i in range(10):
            chain.append("agg1", float(i), [record(seq=i)])
        chain.validate()

    def test_permissioned_append(self):
        chain = Blockchain(authorized={"agg1"})
        chain.append("agg1", 1.0, [])
        with pytest.raises(ChainError):
            chain.append("intruder", 2.0, [])

    def test_authorize_grants_access(self):
        chain = Blockchain(authorized=set())
        chain.authorize("agg1")
        chain.append("agg1", 1.0, [])

    def test_open_chain_allows_anyone(self):
        chain = Blockchain()
        chain.append("whoever", 1.0, [])

    def test_iteration_and_len(self):
        chain = Blockchain()
        for i in range(3):
            chain.append("agg1", float(i), [])
        assert len(chain) == 3
        assert [b.header.height for b in chain] == [0, 1, 2]

    def test_records_for_device(self):
        chain = Blockchain()
        chain.append("agg1", 1.0, [record("d1", seq=0), record("d2", seq=0)])
        chain.append("agg1", 2.0, [record("d1", seq=1)])
        mine = chain.records_for_device("d1d1")
        assert len(mine) == 2

    def test_total_energy(self):
        chain = Blockchain()
        chain.append("agg1", 1.0, [record(energy=2.0, seq=0), record("d2", 3.0, 0)])
        assert chain.total_energy_mwh() == pytest.approx(5.0)
        assert chain.total_energy_mwh("d1d1") == pytest.approx(2.0)

    def test_resume_from_populated_store(self):
        store = InMemoryBlockStore()
        chain = Blockchain(store)
        chain.append("agg1", 1.0, [record(seq=0)])
        resumed = Blockchain(store)
        assert resumed.height == 1
        assert resumed.tip_hash == chain.tip_hash
        resumed.append("agg1", 2.0, [record(seq=1)])
        resumed.validate()


class TestStores:
    def test_in_memory_height_ordering(self):
        store = InMemoryBlockStore()
        block = Block.create(0, GENESIS_HASH, "a", 0.0, [])
        store.put(block)
        with pytest.raises(ChainError):
            store.put(block)  # height 0 again

    def test_in_memory_get_bounds(self):
        with pytest.raises(ChainError):
            InMemoryBlockStore().get(0)

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "chain.jsonl"
        store = JsonlBlockStore(path)
        chain = Blockchain(store)
        for i in range(5):
            chain.append("agg1", float(i), [record(seq=i)])
        # A fresh store instance reads the same chain back.
        reloaded = Blockchain(JsonlBlockStore(path))
        assert reloaded.height == 5
        reloaded.validate()

    def test_jsonl_corrupt_line_detected(self, tmp_path):
        path = tmp_path / "chain.jsonl"
        store = JsonlBlockStore(path)
        Blockchain(store).append("agg1", 1.0, [])
        path.write_text(path.read_text() + "not json\n")
        with pytest.raises(ChainError):
            JsonlBlockStore(path).height()

    def test_jsonl_empty_file_ok(self, tmp_path):
        path = tmp_path / "chain.jsonl"
        path.write_text("\n")
        assert JsonlBlockStore(path).height() == 0


class TestAudit:
    def build_chain(self, store, n=8):
        chain = Blockchain(store)
        for i in range(n):
            chain.append("agg1", float(i), [record(seq=i, energy=float(i))])
        return chain

    def test_clean_chain_audits_clean(self):
        store = InMemoryBlockStore()
        chain = self.build_chain(store)
        report = audit_chain(chain)
        assert report.clean
        assert report.first_bad_height is None

    def test_mutated_record_detected(self):
        store = InMemoryBlockStore()
        chain = self.build_chain(store)
        victim = store.get(3)
        forged_records = list(victim.records)
        forged_records[0] = dict(forged_records[0], energy_mwh=0.0)
        store.tamper(3, Block(victim.header, tuple(forged_records), victim.block_hash))
        report = audit_chain(chain)
        assert not report.clean
        assert 3 in report.invalid_blocks
        assert report.first_bad_height == 3

    def test_recomputed_hash_breaks_link(self):
        # A smarter attacker recomputes the block hash — the *next*
        # block's previous-hash link still exposes the edit.
        store = InMemoryBlockStore()
        chain = self.build_chain(store)
        victim = store.get(3)
        forged = Block.create(
            height=3,
            previous_hash=victim.header.previous_hash,
            aggregator=victim.header.aggregator,
            timestamp=victim.header.timestamp,
            records=[dict(victim.records[0], energy_mwh=0.0)],
        )
        store.tamper(3, forged)
        report = audit_chain(chain)
        assert not report.clean
        assert 4 in report.broken_links

    def test_validate_raises_on_tamper(self):
        store = InMemoryBlockStore()
        chain = self.build_chain(store)
        victim = store.get(2)
        store.tamper(2, Block(victim.header, ({"forged": True},), victim.block_hash))
        with pytest.raises(BlockValidationError):
            chain.validate()

    def test_empty_chain_clean(self):
        assert audit_chain(Blockchain()).clean

    def test_report_collects_all_problems(self):
        store = InMemoryBlockStore()
        chain = self.build_chain(store)
        for height in (2, 5):
            victim = store.get(height)
            store.tamper(
                height, Block(victim.header, ({"forged": height},), victim.block_hash)
            )
        report = audit_chain(chain)
        assert set(report.invalid_blocks) == {2, 5}


class TestConsensus:
    def test_quorum_commits(self):
        chain = Blockchain()
        validators = [Validator(f"v{i}") for i in range(4)]
        consensus = PoaConsensus(validators, chain)
        committed, votes = consensus.propose(1.0, [record()])
        assert committed
        assert chain.height == 1
        assert all(v.accept for v in votes)

    def test_rejection_below_quorum(self):
        chain = Blockchain()
        validators = [
            Validator("v0"),
            Validator("v1", check=lambda r: False),
            Validator("v2", check=lambda r: False),
        ]
        consensus = PoaConsensus(validators, chain)
        committed, votes = consensus.propose(1.0, [record()])
        assert not committed
        assert chain.height == 0

    def test_exact_two_thirds_insufficient(self):
        # Strictly-greater-than quorum: 2 of 3 accepts is not > 2/3.
        chain = Blockchain()
        validators = [
            Validator("v0"),
            Validator("v1"),
            Validator("v2", check=lambda r: False),
        ]
        committed, _ = PoaConsensus(validators, chain).propose(1.0, [])
        assert not committed

    def test_proposer_rotates(self):
        chain = Blockchain()
        validators = [Validator(f"v{i}") for i in range(3)]
        consensus = PoaConsensus(validators, chain)
        assert consensus.proposer_for_round(0).name == "v0"
        assert consensus.proposer_for_round(4).name == "v1"
        consensus.propose(1.0, [])
        consensus.propose(2.0, [])
        assert [b.header.aggregator for b in chain] == ["v0", "v1"]

    def test_message_accounting(self):
        chain = Blockchain()
        validators = [Validator(f"v{i}") for i in range(4)]
        consensus = PoaConsensus(validators, chain)
        consensus.propose(1.0, [])
        # 3 proposal messages + 4*3 vote messages.
        assert consensus.messages_exchanged == 15

    def test_validator_checks_data(self):
        chain = Blockchain()
        validators = [
            Validator(f"v{i}", check=lambda rs: all(r["energy_mwh"] < 10 for r in rs))
            for i in range(4)
        ]
        consensus = PoaConsensus(validators, chain)
        committed, _ = consensus.propose(1.0, [record(energy=100.0)])
        assert not committed

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConsensusError):
            PoaConsensus([], Blockchain())
        with pytest.raises(ConsensusError):
            PoaConsensus([Validator("a"), Validator("a")], Blockchain())
        with pytest.raises(ConsensusError):
            PoaConsensus([Validator("a")], Blockchain(), quorum_ratio=1.5)
