"""Tests for protocol messages, codec and the device FSM."""

import pytest

from repro.errors import CodecError, ProtocolError
from repro.ids import AggregatorId, DeviceId, NetworkAddress
from repro.protocol import (
    Ack,
    ConsumptionReport,
    DeviceFsm,
    DevicePhase,
    ForwardedConsumption,
    MembershipVerifyRequest,
    MembershipVerifyResponse,
    Nack,
    NackReason,
    RegistrationRequest,
    RegistrationResponse,
    RemoveDevice,
    TransferMembership,
    decode_message,
    encode_message,
)
from repro.protocol.codec import as_message, encoded_size
from repro.protocol.messages import (
    MgmtCommand,
    MgmtResponse,
    ReceiptRequest,
    ReceiptResponse,
)

DEVICE = DeviceId("device1")
MASTER = NetworkAddress(AggregatorId("agg1"), 1)
TEMP = NetworkAddress(AggregatorId("agg2"), 9)


def make_report(seq=0, master=MASTER, temp=None, buffered=False):
    return ConsumptionReport(
        device_id=DEVICE,
        master=master,
        temporary=temp,
        sequence=seq,
        measured_at=1.5,
        interval_s=0.1,
        current_ma=123.4,
        voltage_v=3.3,
        energy_mwh=0.0113,
        buffered=buffered,
    )


class TestCodecRoundtrip:
    @pytest.mark.parametrize(
        "message",
        [
            RegistrationRequest(DEVICE, None),
            RegistrationRequest(DEVICE, MASTER),
            RegistrationResponse(DEVICE, MASTER, temporary=False),
            RegistrationResponse(DEVICE, TEMP, temporary=True),
            make_report(),
            make_report(seq=5, temp=TEMP, buffered=True),
            make_report(master=None),
            Ack(DEVICE, 7),
            Ack(DEVICE, None),
            Nack(DEVICE, NackReason.NOT_A_MEMBER, 3),
            Nack(DEVICE, NackReason.ANOMALOUS_REPORT),
            MembershipVerifyRequest(DEVICE, AggregatorId("agg1"), AggregatorId("agg2")),
            MembershipVerifyResponse(DEVICE, AggregatorId("agg1"), True),
            ForwardedConsumption(make_report(), AggregatorId("agg2")),
            MgmtCommand(DEVICE, 3, "status"),
            MgmtCommand(DEVICE, 4, "set-interval", 0.5),
            MgmtResponse(DEVICE, 3, True, {"pong": True}),
            MgmtResponse(DEVICE, 4, False, {"error": "nope"}),
            ReceiptRequest(DEVICE, 17),
            ReceiptResponse(DEVICE, 17, found=False),
            ReceiptResponse(
                DEVICE, 17, found=True,
                receipt={"block_height": 1, "block_hash": "a" * 64,
                         "merkle_root": "b" * 64, "record": {"sequence": 17},
                         "proof": [["L", "c" * 64]]},
            ),
            TransferMembership(DEVICE, TEMP),
            RemoveDevice(DEVICE),
        ],
        ids=lambda m: type(m).__name__ + str(getattr(m, "sequence", "")),
    )
    def test_roundtrip(self, message):
        assert decode_message(encode_message(message)) == message

    def test_encoded_size_positive(self):
        assert encoded_size(make_report()) > 50

    def test_malformed_bytes_rejected(self):
        with pytest.raises(CodecError):
            decode_message(b"\xff\xfe")
        with pytest.raises(CodecError):
            decode_message(b"not json")
        with pytest.raises(CodecError):
            decode_message(b'["array"]')
        with pytest.raises(CodecError):
            decode_message(b'{"type": "martian"}')

    def test_missing_fields_rejected(self):
        with pytest.raises(CodecError):
            decode_message(b'{"type": "consumption_report", "device": "d"}')

    def test_report_to_record_fields(self):
        record = make_report(seq=9).to_record()
        assert record["device"] == "device1"
        assert record["sequence"] == 9
        assert record["device_uid"] == DEVICE.uid
        assert "master" not in record  # addresses are transport, not ledger

    def test_report_validation(self):
        with pytest.raises(ProtocolError):
            make_report(seq=-1)
        with pytest.raises(ProtocolError):
            ConsumptionReport(DEVICE, None, None, 0, 0.0, 0.0, 1.0, 3.3, 0.0)


class TestCodecAdversarial:
    """decode_message on hostile bytes: always CodecError, never a leak.

    Serve mode feeds raw HTTP bodies straight into the codec, so any
    exception other than :class:`CodecError` here would surface as a 500
    (or worse, crash a kernel callback) instead of a clean 400.
    """

    @pytest.mark.parametrize(
        "payload",
        [
            b"",
            b"\xff\xfe",  # invalid UTF-8
            b'{"type": "ack", "device": "d\xc3',  # truncated mid-codepoint
            b'{"type": "ack"',  # truncated JSON
            b"42",  # non-object top level
            b'"just a string"',
            b"null",
            b'{"device": "d"}',  # object without a type
            b'{"type": 7}',  # non-string type
            b'{"type": "ack", "device": 123}',  # wrong-typed device name
            b'{"type": "ack", "device": null}',
            b'{"type": "registration_request", "device": "d", "master": 5}',
            b'{"type": "consumption_report", "device": "d", "sequence": "x"}',
            b'{"type": "receipt_request", "device": "d", "sequence": null}',
            b'{"type": "mgmt", "device": "d", "command": "martian"}',
        ],
        ids=lambda p: repr(p)[:40],
    )
    def test_hostile_bytes_raise_codec_error(self, payload):
        with pytest.raises(CodecError):
            decode_message(payload)

    def test_deeply_nested_json_rejected(self):
        payload = (b"[" * 100_000) + (b"]" * 100_000)
        with pytest.raises(CodecError):
            decode_message(payload)
        nested = (b'{"a":' * 100_000) + b"1" + (b"}" * 100_000)
        with pytest.raises(CodecError):
            decode_message(nested)


class TestAsMessage:
    def test_bytes_and_bytearray_decode(self):
        message = Ack(DEVICE, sequence=4)
        wire = encode_message(message)
        assert as_message(wire) == message
        assert as_message(bytearray(wire)) == message

    def test_str_payload_decodes_as_utf8_json(self):
        message = Ack(DEVICE, sequence=4)
        assert as_message(encode_message(message).decode("utf-8")) == message

    def test_message_dataclass_passes_through(self):
        message = make_report(seq=2)
        assert as_message(message) is message

    def test_malformed_str_raises_codec_error(self):
        with pytest.raises(CodecError):
            as_message("not json")

    def test_non_message_objects_rejected(self):
        for payload in (None, 42, 3.14, ["ack"], {"type": "ack"}, object()):
            with pytest.raises(CodecError):
                as_message(payload)


class TestDeviceFsm:
    def test_initial_state(self):
        fsm = DeviceFsm(DEVICE)
        assert fsm.phase is DevicePhase.IN_TRANSIT
        assert not fsm.has_home
        assert not fsm.can_report

    def test_first_registration_flow(self):
        fsm = DeviceFsm(DEVICE)
        fsm.begin_join()
        decision = fsm.network_joined()
        assert decision.send_registration is not None
        assert decision.send_registration.master is None
        assert fsm.phase is DevicePhase.REGISTERING
        decision = fsm.registration_response(
            RegistrationResponse(DEVICE, MASTER, temporary=False)
        )
        assert decision.resume_reporting and decision.flush_buffer
        assert fsm.master == MASTER
        assert fsm.can_report

    def register_home(self):
        fsm = DeviceFsm(DEVICE)
        fsm.begin_join()
        fsm.network_joined()
        fsm.registration_response(RegistrationResponse(DEVICE, MASTER, temporary=False))
        return fsm

    def test_home_reentry_skips_registration(self):
        fsm = self.register_home()
        fsm.network_left()
        fsm.begin_join()
        decision = fsm.network_joined()
        assert decision.send_registration is None
        assert decision.resume_reporting
        assert fsm.can_report

    def test_roaming_sequence(self):
        fsm = self.register_home()
        fsm.network_left()
        fsm.begin_join()
        fsm.network_joined()
        # Host Nacks the first report.
        decision = fsm.report_nacked(Nack(DEVICE, NackReason.NOT_A_MEMBER, 0))
        assert decision.send_registration is not None
        assert decision.send_registration.master == MASTER
        assert fsm.phase is DevicePhase.REGISTERING
        # Temporary grant.
        decision = fsm.registration_response(
            RegistrationResponse(DEVICE, TEMP, temporary=True)
        )
        assert decision.flush_buffer
        assert fsm.is_roaming
        assert fsm.temporary == TEMP
        assert fsm.master == MASTER  # home retained

    def test_leaving_discards_temporary(self):
        fsm = self.register_home()
        fsm.network_left()
        fsm.begin_join()
        fsm.network_joined()
        fsm.report_nacked(Nack(DEVICE, NackReason.NOT_A_MEMBER))
        fsm.registration_response(RegistrationResponse(DEVICE, TEMP, temporary=True))
        fsm.network_left()
        assert not fsm.is_roaming
        assert fsm.master == MASTER

    def test_anomaly_nack_keeps_reporting(self):
        fsm = self.register_home()
        decision = fsm.report_nacked(Nack(DEVICE, NackReason.ANOMALOUS_REPORT, 1))
        assert decision.send_registration is None
        assert fsm.can_report

    def test_duplicate_grant_is_idempotent(self):
        fsm = self.register_home()
        decision = fsm.registration_response(
            RegistrationResponse(DEVICE, MASTER, temporary=False)
        )
        assert decision.send_registration is None
        assert not decision.resume_reporting

    def test_unexpected_grant_rejected(self):
        fsm = self.register_home()
        other = NetworkAddress(AggregatorId("agg9"), 3)
        with pytest.raises(ProtocolError):
            fsm.registration_response(RegistrationResponse(DEVICE, other, temporary=False))

    def test_wrong_device_response_rejected(self):
        fsm = DeviceFsm(DEVICE)
        fsm.begin_join()
        fsm.network_joined()
        with pytest.raises(ProtocolError):
            fsm.registration_response(
                RegistrationResponse(DeviceId("other"), MASTER, temporary=False)
            )

    def test_temporary_before_home_rejected(self):
        fsm = DeviceFsm(DEVICE)
        fsm.begin_join()
        fsm.network_joined()
        with pytest.raises(ProtocolError):
            fsm.registration_response(RegistrationResponse(DEVICE, TEMP, temporary=True))

    def test_stale_nack_after_removal_ignored(self):
        # A Nack answering a report sent just before the master removed
        # the device must not trigger re-registration.
        fsm = self.register_home()
        fsm.removed()
        decision = fsm.report_nacked(Nack(DEVICE, NackReason.NOT_A_MEMBER))
        assert decision.send_registration is None
        assert fsm.phase is DevicePhase.IN_TRANSIT

    def test_stale_nack_while_registering_ignored(self):
        # Multiple buffered reports can be Nack'd while the first Nack's
        # registration is already in flight; only one request goes out.
        fsm = self.register_home()
        fsm.network_left()
        fsm.begin_join()
        fsm.network_joined()
        first = fsm.report_nacked(Nack(DEVICE, NackReason.NOT_A_MEMBER, 1))
        second = fsm.report_nacked(Nack(DEVICE, NackReason.NOT_A_MEMBER, 2))
        assert first.send_registration is not None
        assert second.send_registration is None

    def test_transfer_updates_master(self):
        fsm = self.register_home()
        new_master = NetworkAddress(AggregatorId("agg2"), 4)
        fsm.membership_transferred(new_master)
        assert fsm.master == new_master
        assert not fsm.is_roaming

    def test_removal_resets(self):
        fsm = self.register_home()
        fsm.removed()
        assert not fsm.has_home
        assert fsm.phase is DevicePhase.IN_TRANSIT

    def test_begin_join_requires_transit(self):
        fsm = self.register_home()
        with pytest.raises(ProtocolError):
            fsm.begin_join()

    def test_network_joined_requires_join_or_transit(self):
        fsm = self.register_home()
        with pytest.raises(ProtocolError):
            fsm.network_joined()
