"""Tests for the CLI entry point and scenario-params config."""

import json

import pytest

from repro.cli import build_parser, main
from repro.config import ScenarioParams, load_params, save_params
from repro.errors import ConfigError, ExperimentError
from repro.experiments.runner import EXPERIMENTS, run_all


class TestRunner:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            run_all(["not-an-experiment"])

    def test_selected_subset_runs(self):
        outputs = run_all(["handshake"])
        assert list(outputs) == ["handshake"]
        assert "T_handshake" in outputs["handshake"]

    def test_registry_names_are_stable(self):
        assert {"fig5", "fig6", "handshake"} <= set(EXPERIMENTS)

    def test_obs_dir_writes_per_experiment_and_merged_artifacts(self, tmp_path):
        from repro.obs.validate import validate_artifact_dir

        obs_dir = tmp_path / "obs"
        outputs = run_all(["handshake"], obs_dir=str(obs_dir))
        assert list(outputs) == ["handshake"]
        # one sub-directory per experiment, plus the merged roll-up
        assert not validate_artifact_dir(obs_dir / "handshake")
        assert not validate_artifact_dir(obs_dir)
        manifest = json.loads((obs_dir / "manifest.json").read_text())
        assert manifest["merged_from"] == ["handshake"]


class TestCli:
    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "fig6" in out

    def test_run_single_experiment(self, capsys):
        assert main(["handshake"]) == 0
        out = capsys.readouterr().out
        assert "=== handshake" in out
        assert "T_handshake" in out

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.experiments == []
        assert not args.list


class TestScenarioParams:
    def test_defaults_valid(self):
        params = ScenarioParams()
        assert params.n_networks == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_networks": 0},
            {"devices_per_network": -1},
            {"t_measure_s": 0.0},
            {"duration_s": -5.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ScenarioParams(**kwargs)

    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "params.json"
        params = ScenarioParams(seed=9, n_networks=3, duration_s=12.0)
        save_params(params, path)
        assert load_params(path) == params

    def test_unknown_key_rejected(self, tmp_path):
        path = tmp_path / "params.json"
        path.write_text(json.dumps({"seed": 1, "bogus": True}))
        with pytest.raises(ConfigError):
            load_params(path)

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "params.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError):
            load_params(path)
        path.write_text("[1, 2]")
        with pytest.raises(ConfigError):
            load_params(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            load_params(tmp_path / "absent.json")
