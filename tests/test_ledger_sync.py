"""Lightweight-client ledger sync, checkpointing and pruning."""

import dataclasses
import json

import pytest

from repro.chain import (
    Blockchain,
    Checkpoint,
    HeaderChain,
    JsonlBlockStore,
    LedgerSyncClient,
    SyncPolicy,
    audit_chain,
)
from repro.chain.receipts import issue_receipt, receipt_from_dict, receipt_to_dict
from repro.errors import ChainError, ConfigError, PrunedBlockError
from repro.experiments.ledger_sync import validate_bench
from repro.runtime import LedgerSpec, ScenarioSpec, build
from repro.runtime.spec import TransportSpec
from repro.workloads.scenarios import scaled_spec


def grow(chain, blocks, records_per_block=3, device="d1", uid="u1"):
    for b in range(chain.height, chain.height + blocks):
        chain.append(
            "agg1",
            float(b),
            [
                {"device": device, "device_uid": uid,
                 "sequence": b * records_per_block + i,
                 "measured_at": float(b), "energy_mwh": 0.5}
                for i in range(records_per_block)
            ],
        )


class TestHeaderChain:
    def make_synced(self, blocks=5):
        chain = Blockchain()
        grow(chain, blocks)
        light = HeaderChain()
        light.extend(chain.headers(0, blocks))
        return chain, light

    def test_extend_follows_chain(self):
        chain, light = self.make_synced(5)
        assert light.height == 5
        assert light.covers(0) and light.covers(4) and not light.covers(5)
        assert light.tip_hash == chain.tip_hash

    def test_duplicate_delivery_is_skipped(self):
        chain, light = self.make_synced(4)
        assert light.extend(chain.headers(0, 4)) == 0
        assert light.height == 4

    def test_gap_rejected(self):
        chain, light = self.make_synced(2)
        grow(chain, 4)
        with pytest.raises(ChainError, match="gap"):
            light.extend(chain.headers(4, 2))
        assert light.height == 2

    def test_broken_link_rejected(self):
        chain = Blockchain()
        grow(chain, 3)
        other = Blockchain()
        grow(other, 3, device="d2", uid="u2")
        light = HeaderChain()
        light.extend(chain.headers(0, 2))
        with pytest.raises(ChainError, match="link"):
            light.extend(other.headers(2, 1))

    def test_anchor_fast_forward(self):
        chain = Blockchain(checkpoint_interval=4)
        grow(chain, 10)
        checkpoint = chain.latest_checkpoint
        assert checkpoint is not None and checkpoint.height == 8
        light = HeaderChain()
        light.anchor_at(checkpoint)
        assert light.base == 8 and light.height == 8
        light.extend(chain.headers(8, 10))
        assert light.height == 10
        assert light.tip_hash == chain.tip_hash
        assert not light.covers(7)

    def test_anchor_only_when_empty(self):
        chain, light = self.make_synced(3)
        with pytest.raises(ChainError, match="anchor"):
            light.anchor_at(Checkpoint(2, "x", 6, 1.0))

    def test_verify_receipt_offline(self):
        chain, light = self.make_synced(5)
        receipt = issue_receipt(chain, 2, 1)
        assert light.verify_receipt(receipt)
        # A receipt for an uncovered height cannot be vouched for.
        tall = issue_receipt(chain, 4, 0)
        short = HeaderChain()
        short.extend(chain.headers(0, 3))
        assert not short.verify_receipt(tall)

    def test_verify_receipt_rejects_wrong_coordinates(self):
        chain, light = self.make_synced(5)
        receipt = issue_receipt(chain, 2, 1)
        forged = dataclasses.replace(receipt, block_hash="0" * 64)
        assert not light.verify_receipt(forged)
        forged = dataclasses.replace(receipt, leaf_count=4)
        assert not light.verify_receipt(forged)


class TestSyncClient:
    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            SyncPolicy(batch_size=0)
        with pytest.raises(ConfigError):
            SyncPolicy(interval_s=0.0)
        assert SyncPolicy(batch_size=8).effective_interval_s(1.0) == 8.0
        assert SyncPolicy(batch_size=8, interval_s=2.5).effective_interval_s() == 2.5

    def test_apply_response_tracks_progress_and_delay(self):
        chain = Blockchain()
        grow(chain, 6)
        client = LedgerSyncClient(SyncPolicy(batch_size=4))
        start, count = client.next_request()
        assert (start, count) == (0, 4)
        behind = client.apply_response(chain.headers(0, 4), chain.height, None, 10.0)
        assert behind
        assert client.chain.height == 4
        assert client.stats.headers_applied == 4
        assert client.stats.delay_samples == 4
        assert client.stats.delay_max_s == 10.0  # block 0 created at t=0
        behind = client.apply_response(chain.headers(4, 4), chain.height, None, 11.0)
        assert not behind
        assert client.chain.height == 6

    def test_bad_batch_counted_not_fatal(self):
        chain = Blockchain()
        grow(chain, 4)
        client = LedgerSyncClient(SyncPolicy(batch_size=4))
        client.apply_response(chain.headers(2, 2), chain.height, None, 1.0)
        assert client.stats.batches_rejected == 1
        assert client.chain.height == 0


class TestCheckpointPruning:
    def test_pruning_requires_checkpointing(self):
        with pytest.raises(ChainError, match="checkpoint"):
            Blockchain(pruning_depth=5)

    def test_checkpoints_committed_on_interval(self):
        chain = Blockchain(checkpoint_interval=3)
        grow(chain, 7)
        assert [c.height for c in chain.checkpoints] == [3, 6]
        assert chain.checkpoints[-1].record_count == 18
        assert chain.latest_checkpoint.height == 6

    def test_pruned_chain_stays_small(self):
        chain = Blockchain(checkpoint_interval=10, pruning_depth=5)
        grow(chain, 100, records_per_block=2)
        assert chain.height == 100
        assert chain.pruned_below == 95  # min(100 - 5, checkpoint at 100)
        assert chain.retained_blocks == 5
        with pytest.raises(PrunedBlockError):
            chain.get(0)
        with pytest.raises(PrunedBlockError):
            chain.get(94)
        chain.get(95)  # retained bodies still served

    def test_validate_and_audit_clean_after_pruning(self):
        chain = Blockchain(checkpoint_interval=10, pruning_depth=5)
        grow(chain, 40)
        assert chain.pruned_below > 0
        chain.validate()
        assert audit_chain(chain).clean

    def test_receipts_against_pruned_blocks_still_verify(self):
        chain = Blockchain(checkpoint_interval=10, pruning_depth=5)
        grow(chain, 5)
        receipt = issue_receipt(chain, 2, 0)
        grow(chain, 35)
        assert receipt.block_height < chain.pruned_below
        # The receipt survives a JSON round trip (devices get it wired).
        receipt = receipt_from_dict(receipt_to_dict(receipt))
        # Against the pruned chain's retained header view...
        assert receipt.verify(chain)
        # ...and fully offline against a lightweight client.
        light = HeaderChain()
        light.extend(chain.headers(0, 40))
        assert light.verify_receipt(receipt)
        # But issuing a NEW receipt for a pruned block is impossible.
        with pytest.raises(ChainError, match="pruned"):
            issue_receipt(chain, 2, 0)

    def test_records_for_device_uses_retained_bodies(self):
        chain = Blockchain(checkpoint_interval=10, pruning_depth=5)
        grow(chain, 30)
        records = chain.records_for_device("u1")
        # Only retained blocks can contribute record bodies.
        assert len(records) == chain.retained_blocks * 3
        assert chain.records_total == 30 * 3

    def test_locate_record(self):
        chain = Blockchain()
        grow(chain, 4)
        assert chain.locate_record("u1", 5) == (1, 2)
        assert chain.locate_record("u1", 999) is None
        assert chain.locate_record("nobody", 0) is None


class TestJsonlRefresh:
    def test_second_reader_sees_appends(self, tmp_path):
        path = tmp_path / "chain.jsonl"
        writer = Blockchain(JsonlBlockStore(path))
        reader = Blockchain(JsonlBlockStore(path))
        grow(writer, 3)
        # The reader's store refreshes from the file on access.
        assert reader.height == 3
        reader.validate()
        assert audit_chain(reader).clean

    def test_reader_follows_continued_growth(self, tmp_path):
        path = tmp_path / "chain.jsonl"
        writer = Blockchain(JsonlBlockStore(path))
        grow(writer, 2)
        reader = Blockchain(JsonlBlockStore(path))
        assert reader.height == 2
        grow(writer, 3)
        assert reader.height == 5
        assert reader.tip_hash == writer.tip_hash


class TestLedgerSpec:
    def test_round_trip(self):
        spec = LedgerSpec(
            sync_enabled=True, header_batch_size=8, sync_interval_s=2.0,
            checkpoint_interval_blocks=20, pruning_depth_blocks=10,
        )
        assert LedgerSpec.from_dict(spec.to_dict()) == spec

    def test_defaults_round_trip_through_scenario(self):
        spec = scaled_spec(1, 1, seed=3)
        data = json.loads(spec.to_json())
        assert data["ledger"]["sync_enabled"] is False
        again = ScenarioSpec.from_dict(data)
        assert again == spec
        # Old documents without a ledger block still parse to defaults.
        del data["ledger"]
        assert ScenarioSpec.from_dict(data).ledger == LedgerSpec()

    def test_validation(self):
        with pytest.raises(ConfigError):
            LedgerSpec(header_batch_size=0)
        with pytest.raises(ConfigError):
            LedgerSpec(sync_interval_s=-1.0)
        with pytest.raises(ConfigError, match="checkpoint"):
            LedgerSpec(pruning_depth_blocks=5)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="ledger"):
            LedgerSpec.from_dict({"sync_enabled": True, "bogus": 1})


def build_sync_world(batch=4, *, checkpointing=False, seed=23, enter_devices=True):
    ledger = LedgerSpec(
        sync_enabled=True,
        header_batch_size=batch,
        checkpoint_interval_blocks=10 if checkpointing else 0,
        pruning_depth_blocks=5 if checkpointing else 0,
    )
    spec = dataclasses.replace(
        scaled_spec(
            1, 2, seed=seed,
            transport=TransportSpec(kind="direct"),
            enter_devices=enter_devices,
        ),
        name="sync-e2e",
        ledger=ledger,
    )
    return build(spec)


class TestEndToEndSync:
    def test_devices_follow_the_chain(self):
        scenario = build_sync_world(batch=4)
        scenario.simulator.run_until(30.0)
        chain = scenario.chain
        assert chain.height > 10
        for device in scenario.devices.values():
            light = device.header_chain
            assert light is not None
            assert light.height > 0
            stats = device.sync_stats
            assert stats.requests_sent > 0
            assert stats.headers_applied == light.header_count
            assert stats.batches_rejected == 0
            # Every held header is the ledger's own.
            for height in range(light.base, light.height):
                assert (
                    light.header_at(height).block_hash
                    == chain.header_at(height).block_hash
                )

    def test_receipt_verifies_offline_against_synced_headers(self):
        scenario = build_sync_world(batch=4)
        scenario.simulator.run_until(30.0)
        device = next(iter(scenario.devices.values()))
        sequence = sorted(device.acked_sequences)[0]
        device.request_receipt(sequence)
        scenario.simulator.run_until(32.0)
        receipt = device.receipts[sequence]
        assert receipt is not None
        verified = scenario.context.tracer.by_category("device.receipt_verified")
        assert any(
            r.detail.get("offline") and r.detail.get("sequence") == sequence
            for r in verified
        )

    def test_late_device_anchors_at_checkpoint(self):
        # A device entering a mature network must not replay history:
        # the aggregator offers its newest checkpoint and the client
        # anchors there instead of syncing from genesis.
        scenario = build_sync_world(batch=4, checkpointing=True, enter_devices=False)
        sim = scenario.simulator
        scenario.enter_at("dev-0-0", "net-0", 0.0)
        scenario.enter_at("dev-0-1", "net-0", 40.0)
        sim.run_until(40.0)
        assert scenario.chain.latest_checkpoint is not None
        late = scenario.device("dev-0-1")
        sim.run_until(60.0)
        stats = late.sync_stats
        assert stats.checkpoint_anchors == 1
        light = late.header_chain
        assert light.anchor is not None
        assert light.base == light.anchor.height > 0
        assert light.height > light.base

    def test_disabled_by_default(self):
        spec = scaled_spec(1, 1, seed=5, transport=TransportSpec(kind="direct"))
        scenario = build(spec)
        scenario.simulator.run_until(5.0)
        device = next(iter(scenario.devices.values()))
        assert device.header_chain is None


class TestBenchSchema:
    def good_doc(self):
        point = {
            "batch_size": 1, "sync_interval_s": 1.0, "blocks_produced": 10,
            "headers_per_device": 10.0, "sync_bytes_per_device": 100.0,
            "bytes_per_block_per_device": 10.0, "mean_delay_s": 0.5,
            "max_delay_s": 1.0, "receipts_verified_offline": 2,
            "receipts_requested": 2,
        }
        return {
            "suite": "ledger",
            "configs": {
                "full": {
                    "delay_vs_traffic": [
                        {**point, "batch_size": b} for b in (1, 4, 16)
                    ],
                    "pruning": {
                        "reports": 1_000_000, "blocks_total": 1000,
                        "blocks_retained": 50, "retained_fraction": 0.05,
                        "receipts_sampled": 40, "receipts_verified": 40,
                    },
                }
            },
        }

    def test_committed_artifact_is_valid(self):
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / "BENCH_ledger.json"
        assert path.exists(), "BENCH_ledger.json must be committed"
        assert validate_bench(json.loads(path.read_text())) == []

    def test_good_document_passes(self):
        assert validate_bench(self.good_doc()) == []

    def test_violations_caught(self):
        doc = self.good_doc()
        doc["configs"]["full"]["pruning"]["retained_fraction"] = 0.5
        assert any("retained_fraction" in p for p in validate_bench(doc))

        doc = self.good_doc()
        doc["configs"]["full"]["pruning"]["receipts_verified"] = 39
        assert any("receipts" in p for p in validate_bench(doc))

        doc = self.good_doc()
        for point in doc["configs"]["full"]["delay_vs_traffic"]:
            point["batch_size"] = 4
        assert any("distinct" in p for p in validate_bench(doc))

        doc = self.good_doc()
        del doc["configs"]["full"]["pruning"]
        assert any("pruning" in p for p in validate_bench(doc))

        assert validate_bench([]) == ["document is not an object"]
        assert any("suite" in p for p in validate_bench({"suite": "x", "configs": {}}))
