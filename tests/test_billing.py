"""Tests for tariffs, invoices and the billing engine."""

import pytest

from repro.billing import BillingEngine, FlatTariff, Invoice, InvoiceLine, TimeOfUseTariff
from repro.chain import Blockchain
from repro.errors import BillingError
from repro.ids import DeviceId


def record(device_id, seq, energy=1.0, at=1.0, roaming=False):
    return {
        "device": device_id.name,
        "device_uid": device_id.uid,
        "sequence": seq,
        "measured_at": at,
        "energy_mwh": energy,
        "roaming": roaming,
    }


class TestTariffs:
    def test_flat_tariff_constant(self):
        tariff = FlatTariff(2.5)
        assert tariff.price_per_mwh(0.0) == tariff.price_per_mwh(1e6) == 2.5

    def test_negative_rate_rejected(self):
        with pytest.raises(BillingError):
            FlatTariff(-1.0)

    def test_time_of_use_peak_window(self):
        tariff = TimeOfUseTariff(
            period_s=24.0, peak_start_s=8.0, peak_end_s=20.0,
            peak_rate=4.0, offpeak_rate=1.0,
        )
        assert tariff.price_per_mwh(10.0) == 4.0
        assert tariff.price_per_mwh(22.0) == 1.0
        assert tariff.price_per_mwh(34.0) == 4.0  # next period

    def test_time_of_use_boundaries(self):
        tariff = TimeOfUseTariff(period_s=24.0, peak_start_s=8.0, peak_end_s=20.0)
        assert tariff.price_per_mwh(8.0) == tariff.peak_rate
        assert tariff.price_per_mwh(20.0) == tariff.offpeak_rate

    def test_invalid_window_rejected(self):
        with pytest.raises(BillingError):
            TimeOfUseTariff(period_s=10.0, peak_start_s=5.0, peak_end_s=4.0)
        with pytest.raises(BillingError):
            TimeOfUseTariff(period_s=10.0, peak_start_s=0.0, peak_end_s=11.0)


class TestInvoice:
    def test_totals_split_home_and_roaming(self):
        invoice = Invoice("d1", (0.0, 10.0))
        invoice.add_line(InvoiceLine(1.0, 2.0, 1.0, roaming=False))
        invoice.add_line(InvoiceLine(2.0, 3.0, 1.0, roaming=True))
        assert invoice.home_energy_mwh == 2.0
        assert invoice.roaming_energy_mwh == 3.0
        assert invoice.total_energy_mwh == 5.0
        assert invoice.total_cost == pytest.approx(5.0)

    def test_out_of_period_rejected(self):
        invoice = Invoice("d1", (0.0, 10.0))
        with pytest.raises(BillingError):
            invoice.add_line(InvoiceLine(11.0, 1.0, 1.0, roaming=False))

    def test_render_mentions_device_and_totals(self):
        invoice = Invoice("escooter", (0.0, 10.0))
        invoice.add_line(InvoiceLine(1.0, 2.0, 1.5, roaming=False))
        text = invoice.render()
        assert "escooter" in text
        assert "2.0" in text


class TestBillingEngine:
    def make_chain(self):
        chain = Blockchain()
        d1, d2 = DeviceId("d1"), DeviceId("d2")
        chain.append(
            "agg1",
            1.0,
            [
                record(d1, 0, 1.0, at=1.0),
                record(d1, 1, 2.0, at=2.0, roaming=True),
                record(d2, 0, 5.0, at=1.5),
            ],
        )
        chain.append("agg1", 2.0, [record(d1, 2, 3.0, at=3.0)])
        return chain, d1, d2

    def test_invoice_totals(self):
        chain, d1, _ = self.make_chain()
        engine = BillingEngine(chain, FlatTariff(1.0))
        invoice = engine.invoice(d1, (0.0, 10.0))
        assert invoice.home_energy_mwh == pytest.approx(4.0)
        assert invoice.roaming_energy_mwh == pytest.approx(2.0)
        assert invoice.total_cost == pytest.approx(6.0)

    def test_period_filtering(self):
        chain, d1, _ = self.make_chain()
        engine = BillingEngine(chain, FlatTariff(1.0))
        invoice = engine.invoice(d1, (0.0, 2.5))
        assert invoice.total_energy_mwh == pytest.approx(3.0)

    def test_duplicate_sequences_deduplicated(self):
        chain = Blockchain()
        d1 = DeviceId("d1")
        # A QoS-1 retransmission raced the Ack: same sequence twice.
        chain.append("agg1", 1.0, [record(d1, 0, 1.0), record(d1, 0, 1.0)])
        engine = BillingEngine(chain, FlatTariff(1.0))
        invoice = engine.invoice(d1, (0.0, 10.0))
        assert invoice.total_energy_mwh == pytest.approx(1.0)

    def test_per_device_tariff_override(self):
        chain, d1, d2 = self.make_chain()
        engine = BillingEngine(chain, FlatTariff(1.0))
        engine.set_device_tariff(d2, FlatTariff(10.0))
        assert engine.invoice(d2, (0.0, 10.0)).total_cost == pytest.approx(50.0)
        assert engine.invoice(d1, (0.0, 10.0)).total_cost == pytest.approx(6.0)

    def test_summary_across_devices(self):
        chain, _, _ = self.make_chain()
        engine = BillingEngine(chain, FlatTariff(1.0))
        summary = engine.settlement_summary((0.0, 10.0))
        assert summary["energy_mwh_by_device"] == {"d1": 6.0, "d2": 5.0}

    def test_include_lines_false(self):
        chain, d1, _ = self.make_chain()
        engine = BillingEngine(chain, FlatTariff(1.0))
        invoice = engine.invoice(d1, (0.0, 10.0), include_lines=False)
        assert invoice.lines == []
        assert invoice.total_energy_mwh == pytest.approx(6.0)

    def test_empty_period_rejected(self):
        chain, d1, _ = self.make_chain()
        engine = BillingEngine(chain, FlatTariff(1.0))
        with pytest.raises(BillingError):
            engine.invoice(d1, (5.0, 1.0))

    def test_unknown_device_gets_empty_invoice(self):
        chain, _, _ = self.make_chain()
        engine = BillingEngine(chain, FlatTariff(1.0))
        invoice = engine.invoice(DeviceId("ghost"), (0.0, 10.0))
        assert invoice.total_energy_mwh == 0.0
