"""End-to-end chaos tests: fault scenarios against the paper testbed."""

import pytest

from repro.errors import ProtocolError
from repro.experiments.faults import settle_and_measure
from repro.faults import LinkFaultSpec
from repro.workloads.scenarios import (
    _chaos_device_config,
    build_blackout_scenario,
    build_crash_scenario,
    build_paper_testbed,
    build_partition_scenario,
)


class TestBlackoutScenario:
    def test_buffering_then_backfill(self):
        # The Fig. 6 shape caused by a fault: reports buffer through the
        # blackout and backfill flagged buffered=True afterwards.
        scenario, plan = build_blackout_scenario(
            seed=3, blackout_at=5.0, blackout_s=8.0
        )
        result = settle_and_measure(scenario, plan, run_s=20.0, seed=3)
        assert result.delivery_ratio == 1.0
        assert result.billing_error < 1e-9
        for name, outcome in result.devices.items():
            assert outcome.store_dropped == 0, name
            # ~80 samples land inside the 8 s window at 0.1 s cadence.
            assert outcome.buffered_delivered >= 60, name
        assert result.fault_counters["radio.blackouts"] == 1
        assert result.fault_counters["radio.blackout_losses"] > 0

    def test_buffer_grows_during_blackout(self):
        # blackout_at=10 leaves room for the ~6 s scan-dominated
        # handshake: devices are REPORTING with an empty store before
        # the lights go out.
        scenario, _ = build_blackout_scenario(seed=0, blackout_at=10.0, blackout_s=8.0)
        scenario.run_until(9.9)
        assert all(d.store.pending == 0 for d in scenario.devices.values())
        scenario.run_until(17.0)
        pending = {n: d.store.pending for n, d in scenario.devices.items()}
        assert all(p > 40 for p in pending.values()), pending


class TestCrashScenario:
    def test_crash_restart_backfills(self):
        scenario, plan = build_crash_scenario(seed=1, crash_at=10.0, outage_s=6.0)
        result = settle_and_measure(scenario, plan, run_s=25.0, seed=1)
        assert result.delivery_ratio == 1.0
        assert result.billing_error < 1e-9
        # agg1's devices rode the Ack-timeout retry path.
        assert (
            result.devices["device1"].retry_stats["report_timeouts"] > 0
        )
        # agg2's network never noticed.
        assert result.devices["device3"].retry_stats["report_timeouts"] == 0

    def test_crash_is_guarded(self):
        from repro.errors import ConfigError

        scenario = build_paper_testbed(seed=0)
        unit = scenario.aggregator("agg1")
        with pytest.raises(ConfigError):
            unit.crash_for(0.0)
        unit.crash_for(5.0)
        assert unit.down
        assert unit.broker.down
        with pytest.raises(ProtocolError):
            unit.crash_for(1.0)  # already down
        scenario.run_until(10.0)
        assert not unit.down
        assert not unit.broker.down

    def test_volatile_state_lost_ledger_survives(self):
        scenario, plan = build_crash_scenario(seed=0, crash_at=10.0, outage_s=5.0)
        scenario.run_until(9.0)
        unit = scenario.aggregator("agg1")
        registry_before = unit.registry
        height_before = scenario.chain.height
        assert registry_before.member_count == 2
        scenario.run_until(40.0)
        # The restart rebuilt the registry from nothing (volatile state
        # lost) and the devices re-registered through the normal
        # sequence, vouched by the surviving ledger.
        assert unit.registry is not registry_before
        assert unit.registry.member_count == 2
        assert scenario.chain.height > height_before


class TestPartitionScenario:
    def test_roaming_registration_survives_partition(self):
        # Defaults: partition 18-38 s, device1 leaves home at 20 s and
        # reaches agg2 mid-partition, so its membership verify fires
        # into the split mesh and must ride the retry path.
        scenario, plan = build_partition_scenario(seed=2)
        agg2 = scenario.aggregator("agg2")
        result = settle_and_measure(scenario, plan, run_s=70.0, seed=2)
        assert result.delivery_ratio == 1.0
        assert result.billing_error < 1e-9
        # The verify conversation had to retry across the partition
        # (or time out and fail closed before eventually succeeding).
        stats = agg2.liaison.stats
        assert stats.verify_retries + stats.verify_timeouts > 0
        assert scenario.device("device1").fsm.phase.value == "reporting"


class TestBrokerFaults:
    def test_broker_down_drops_and_counts(self):
        scenario = build_paper_testbed(seed=0)
        unit = scenario.aggregator("agg1")
        scenario.run_until(12.0)  # devices registered and reporting
        unit.broker.set_down(True)
        dropped_before = unit.broker.messages_dropped
        scenario.run_until(13.0)
        assert unit.broker.messages_dropped > dropped_before
        unit.broker.set_down(False)

    def test_broker_injector_survivable_with_retry(self):
        scenario = build_paper_testbed(
            seed=5, device_config=_chaos_device_config(0.1, retry=True)
        )
        from repro.faults import FaultPlan

        plan = FaultPlan(scenario.simulator)
        for name, unit in scenario.aggregators.items():
            injector = plan.make_injector(f"broker:{name}")
            unit.broker.set_fault_injector(injector)
            plan.link_noise(
                f"{name}-loss", injector, LinkFaultSpec(drop_p=0.1), start_at=0.0
            )
        result = settle_and_measure(scenario, plan, run_s=15.0, seed=5)
        assert result.delivery_ratio >= 0.99
        assert plan.counters.total("broker:") > 0

    def test_duplicate_faults_deduplicated_by_ledger_scoring(self):
        scenario = build_paper_testbed(
            seed=6, device_config=_chaos_device_config(0.1, retry=True)
        )
        from repro.faults import FaultPlan

        plan = FaultPlan(scenario.simulator)
        unit = scenario.aggregator("agg1")
        injector = plan.make_injector("dup")
        unit.broker.set_fault_injector(injector)
        plan.link_noise(
            "dup-storm", injector, LinkFaultSpec(duplicate_p=0.3), start_at=0.0
        )
        result = settle_and_measure(scenario, plan, run_s=10.0, seed=6)
        # Duplicated report messages reach the aggregator twice but
        # sequence-dedup keeps billing exact.
        assert result.delivery_ratio == 1.0
        assert result.billing_error < 1e-9


class TestRetryMatters:
    def test_no_retry_loses_reports_under_silent_loss(self):
        def run(retry: bool) -> float:
            scenario = build_paper_testbed(
                seed=4, device_config=_chaos_device_config(0.1, retry)
            )
            from repro.faults import FaultPlan

            plan = FaultPlan(scenario.simulator)
            for name, unit in scenario.aggregators.items():
                injector = plan.make_injector(f"broker:{name}")
                unit.broker.set_fault_injector(injector)
                plan.link_noise(
                    f"{name}-loss", injector, LinkFaultSpec(drop_p=0.1), start_at=0.0
                )
            return settle_and_measure(scenario, plan, run_s=15.0, seed=4).delivery_ratio

        with_retry = run(True)
        without_retry = run(False)
        assert with_retry >= 0.99
        assert without_retry < with_retry - 0.01


class TestDeterminism:
    def test_same_seed_same_chaos_outcome(self):
        def run():
            scenario, plan = build_blackout_scenario(
                seed=11, blackout_at=3.0, blackout_s=4.0
            )
            result = settle_and_measure(scenario, plan, run_s=12.0, seed=11)
            return (
                result.fault_counters,
                {n: (d.measured, d.delivered, d.ledger_mwh) for n, d in result.devices.items()},
            )

        assert run() == run()

    def test_different_seeds_differ(self):
        def run(seed):
            scenario, plan = build_blackout_scenario(seed=seed)
            scenario.run_until(8.0)
            return scenario.chain.total_energy_mwh()

        assert run(1) != run(2)


class TestFaultSweepWorkers:
    def test_parallel_sweep_matches_serial(self):
        # The acceptance property of the parallel executor: any worker
        # count produces byte-identical results (each point is a pure
        # function of its parameters, collected in point order).
        from repro.experiments.faults import run_fault_sweep

        intensities = [0.0, 0.15]
        serial = run_fault_sweep(intensities, seed=3, run_s=8.0)
        parallel = run_fault_sweep(intensities, seed=3, run_s=8.0, workers=2)
        assert parallel == serial
        assert [p.intensity for p in parallel] == intensities

    def test_empty_sweep_is_empty(self):
        from repro.experiments.faults import run_fault_sweep

        assert run_fault_sweep([]) == []
