"""Tests for the MQTT-like broker and client."""

import pytest

from repro.errors import NetworkError
from repro.net import ChannelParams, MqttBroker, MqttClient, QoS, WirelessChannel
from repro.net.mqtt import topic_matches
from repro.sim import Simulator


def make_world(seed=0, **channel_overrides):
    sim = Simulator(seed=seed)
    channel = WirelessChannel(
        ChannelParams(**channel_overrides), sim.rng.stream("channel")
    )
    broker = MqttBroker(sim, "broker")
    client = MqttClient(sim, "client", channel)
    return sim, channel, broker, client


def connect(sim, broker, client, rssi=-50.0):
    client.connect(broker, rssi)
    sim.run_until(sim.now + 2.0)


class TestTopicMatching:
    @pytest.mark.parametrize(
        "pattern,topic,expected",
        [
            ("a/b", "a/b", True),
            ("a/b", "a/c", False),
            ("a/+", "a/b", True),
            ("a/+/c", "a/b/c", True),
            ("a/+/c", "a/b/d", False),
            ("a/#", "a/b/c/d", True),
            ("#", "anything/at/all", True),
            ("a/b", "a/b/c", False),
            ("a/b/c", "a/b", False),
            ("+/b", "a/b", True),
        ],
    )
    def test_matching(self, pattern, topic, expected):
        assert topic_matches(pattern, topic) is expected

    def test_hash_must_be_last(self):
        with pytest.raises(NetworkError):
            topic_matches("a/#/b", "a/x/b")


class TestBroker:
    def test_delivery_to_subscriber(self):
        sim, _, broker, _ = make_world()
        got = []
        broker.subscribe("meter/+/report", lambda t, p: got.append((t, p)))
        broker.deliver("meter/d1/report", b"hello")
        sim.run()
        assert got == [("meter/d1/report", b"hello")]

    def test_delivery_is_delayed_not_immediate(self):
        sim, _, broker, _ = make_world()
        got = []
        broker.subscribe("x", lambda t, p: got.append(sim.now))
        broker.deliver("x", 1, after_s=0.5)
        assert got == []
        sim.run()
        assert got[0] >= 0.5

    def test_no_match_no_delivery(self):
        sim, _, broker, _ = make_world()
        got = []
        broker.subscribe("a/b", lambda t, p: got.append(p))
        broker.deliver("c/d", 1)
        sim.run()
        assert got == []
        assert broker.messages_routed == 0

    def test_multiple_subscribers(self):
        sim, _, broker, _ = make_world()
        got = []
        broker.subscribe("x", lambda t, p: got.append("a"))
        broker.subscribe("x", lambda t, p: got.append("b"))
        broker.deliver("x", 1)
        sim.run()
        assert got == ["a", "b"]

    def test_unsubscribe(self):
        sim, _, broker, _ = make_world()
        got = []
        callback = lambda t, p: got.append(p)
        broker.subscribe("x", callback)
        broker.unsubscribe("x", callback)
        broker.deliver("x", 1)
        sim.run()
        assert got == []

    def test_unsubscribe_unknown_rejected(self):
        _, _, broker, _ = make_world()
        with pytest.raises(NetworkError):
            broker.unsubscribe("x", lambda t, p: None)

    def test_connect_duration_positive_and_jittered(self):
        _, _, broker, _ = make_world()
        samples = {broker.connect_duration_s() for _ in range(10)}
        assert all(s > 0 for s in samples)
        assert len(samples) > 1


class TestClient:
    def test_connect_then_publish(self):
        sim, _, broker, client = make_world(shadowing_sigma_db=0.0)
        got = []
        broker.subscribe("t", lambda t, p: got.append(p))
        connect(sim, broker, client)
        assert client.connected
        assert client.publish("t", b"data")
        sim.run()
        assert got == [b"data"]

    def test_publish_while_disconnected_raises(self):
        _, _, _, client = make_world()
        with pytest.raises(NetworkError):
            client.publish("t", b"x")

    def test_disconnect(self):
        sim, _, broker, client = make_world()
        connect(sim, broker, client)
        client.disconnect()
        assert not client.connected

    def test_connect_callback_fires_after_latency(self):
        sim, _, broker, client = make_world()
        times = []
        client.connect(broker, -50.0, on_connected=lambda: times.append(sim.now))
        sim.run()
        assert len(times) == 1 and times[0] > 0

    def test_qos1_retries_through_weak_link(self):
        # At PER ~ 0.5, QoS 1 with 5 retries almost always gets through.
        sim, _, broker, client = make_world(seed=3, shadowing_sigma_db=0.0)
        got = []
        broker.subscribe("t", lambda t, p: got.append(p))
        connect(sim, broker, client, rssi=-88.0)
        delivered = sum(
            client.publish("t", i, qos=QoS.AT_LEAST_ONCE) for i in range(100)
        )
        sim.run()
        assert delivered >= 95
        assert client.stats["retransmissions"] > 0

    def test_qos0_drops_on_weak_link(self):
        sim, _, broker, client = make_world(seed=4, shadowing_sigma_db=0.0)
        connect(sim, broker, client, rssi=-88.0)
        delivered = sum(
            client.publish("t", i, qos=QoS.AT_MOST_ONCE) for i in range(200)
        )
        assert 40 < delivered < 160  # PER ~ 0.5, no retries
        assert client.stats["dropped"] > 0

    def test_stats_counts(self):
        sim, _, broker, client = make_world(shadowing_sigma_db=0.0)
        connect(sim, broker, client)
        client.publish("t", 1)
        assert client.stats["published"] == 1

    def test_invalid_client_params_rejected(self):
        sim, channel, _, _ = make_world()
        with pytest.raises(NetworkError):
            MqttClient(sim, "bad", channel, max_retries=-1)
        with pytest.raises(NetworkError):
            MqttClient(sim, "bad", channel, retry_backoff_s=0.0)
