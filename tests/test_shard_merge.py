"""Cross-shard merge tests: chains, counters, series banks, summaries.

The merge layer is pure data-in/data-out, so these tests drive it with
hand-built shard snapshots — unit conflicts, name collisions, empty
shards — without spinning up engines.
"""

import pytest

from repro.chain.ledger import Blockchain
from repro.errors import ConfigError
from repro.runtime.spec import LedgerSpec
from repro.shard.merge import (
    merge_aggregator_series,
    merge_chain_ops,
    merge_counter_snapshots,
    merge_series_parts,
    merge_summaries,
)


def _record(device: str, seq: int) -> dict:
    return {"device_uid": device, "sequence": seq, "energy_mwh": 1.0}


class TestChainMerge:
    def test_replay_matches_serial_appends(self):
        names = ["agg-a", "agg-b"]
        serial = Blockchain()
        serial.append("agg-a", 1.0, [_record("d1", 0)])
        serial.append("agg-b", 1.0, [_record("d2", 0)])
        serial.append("agg-a", 2.0, [])
        serial.append("agg-b", 3.0, [_record("d2", 1)])
        # Shard 0 owns agg-a, shard 1 owns agg-b.
        shard0 = [(1.0, 0, [_record("d1", 0)]), (2.0, 0, [])]
        shard1 = [(1.0, 1, [_record("d2", 0)]), (3.0, 1, [_record("d2", 1)])]
        merged = merge_chain_ops([shard0, shard1], names)
        assert merged.tip_hash == serial.tip_hash
        assert merged.height == serial.height

    def test_same_instant_ties_break_by_declaration_index(self):
        names = ["agg-a", "agg-b"]
        # Shard order reversed relative to declaration order: the merge
        # key, not the input order, must decide same-instant placement.
        shard_b = [(5.0, 1, [_record("x", 0)])]
        shard_a = [(5.0, 0, [_record("y", 0)])]
        merged = merge_chain_ops([shard_b, shard_a], names)
        assert merged.get(0).header.aggregator == "agg-a"
        assert merged.get(1).header.aggregator == "agg-b"

    def test_empty_shards_and_ledger_config(self):
        names = ["agg-a"]
        ledger = LedgerSpec(checkpoint_interval_blocks=2)
        ops = [(float(i), 0, []) for i in range(4)]
        merged = merge_chain_ops([ops, []], names, ledger=ledger)
        assert merged.height == 4
        assert len(merged.checkpoints) == 2

    def test_intra_shard_order_is_preserved(self):
        # Same (timestamp, index) twice — e.g. a >1024-record flush
        # split — must replay in log order.
        names = ["agg-a"]
        ops = [
            (1.0, 0, [_record("d", 0)]),
            (1.0, 0, [_record("d", 1)]),
        ]
        merged = merge_chain_ops([ops], names)
        assert merged.get(0).records[0]["sequence"] == 0
        assert merged.get(1).records[0]["sequence"] == 1


class TestCounterMerge:
    def test_sums_across_shards(self):
        merged = merge_counter_snapshots(
            [{"a": 1, "b": 2}, {"b": 3, "c": 4}, {}]
        )
        assert merged == {"a": 1, "b": 5, "c": 4}

    def test_keys_sorted_like_counterbank_snapshot(self):
        merged = merge_counter_snapshots([{"z": 1}, {"a": 1}])
        assert list(merged) == ["a", "z"]

    def test_no_shards(self):
        assert merge_counter_snapshots([]) == {}


class TestSeriesMerge:
    def test_disjoint_names_keep_order_and_units(self):
        bank = merge_series_parts(
            [
                [("current", "mA", [0.0, 1.0], [5.0, 6.0])],
                [("voltage", "V", [0.5], [3.3])],
            ]
        )
        assert bank.names == ["current", "voltage"]
        assert bank["current"].unit == "mA"
        assert bank["current"].values == [5.0, 6.0]
        assert bank["voltage"].times == [0.5]

    def test_name_collision_interleaves_by_time(self):
        bank = merge_series_parts(
            [
                [("load", "W", [0.0, 2.0], [1.0, 3.0])],
                [("load", "W", [1.0], [2.0])],
            ]
        )
        assert bank["load"].times == [0.0, 1.0, 2.0]
        assert bank["load"].values == [1.0, 2.0, 3.0]

    def test_unit_conflict_raises(self):
        with pytest.raises(ConfigError, match="refusing conflicting unit"):
            merge_series_parts(
                [
                    [("load", "W", [0.0], [1.0])],
                    [("load", "mA", [1.0], [2.0])],
                ]
            )

    def test_wildcard_unit_adopts_concrete(self):
        bank = merge_series_parts(
            [
                [("load", "", [0.0], [1.0])],
                [("load", "W", [1.0], [2.0])],
            ]
        )
        assert bank["load"].unit == "W"

    def test_empty_parts(self):
        assert merge_series_parts([]).names == []
        assert merge_series_parts([[], []]).names == []


class TestAggregatorSeriesMerge:
    def test_disjoint_aggregators(self):
        merged = merge_aggregator_series(
            [
                {"net-0": [("s", "", [0.0], [1.0])]},
                {"net-1": [("s", "", [0.0], [2.0])]},
            ]
        )
        assert set(merged) == {"net-0", "net-1"}
        assert merged["net-1"]["s"].values == [2.0]

    def test_duplicate_aggregator_raises(self):
        with pytest.raises(ConfigError, match="two shards"):
            merge_aggregator_series([{"net-0": []}, {"net-0": []}])

    def test_empty_shard_maps(self):
        assert merge_aggregator_series([{}, {}]) == {}


class TestSummaryMerge:
    def test_union(self):
        merged = merge_summaries([{"a": {"x": 1}}, {"b": {"x": 2}}])
        assert merged == {"a": {"x": 1}, "b": {"x": 2}}

    def test_collision_raises(self):
        with pytest.raises(ConfigError, match="two shards"):
            merge_summaries([{"a": {}}, {"a": {}}])
