"""Tests for the sweep helper."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.sweeps import grid, sweep


class TestGrid:
    def test_cartesian_product(self):
        points = grid(a=[1, 2], b=["x", "y"])
        assert len(points) == 4
        assert {"a": 2, "b": "y"} in points

    def test_single_axis(self):
        assert grid(a=[1]) == [{"a": 1}]

    def test_order_is_row_major(self):
        points = grid(a=[1, 2], b=[10, 20])
        assert points[0] == {"a": 1, "b": 10}
        assert points[1] == {"a": 1, "b": 20}

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            grid()


class TestSweep:
    def test_parameters_then_results(self):
        def run(x):
            return {"double": 2 * x, "square": x * x}

        headers, rows = sweep(run, grid(x=[2, 3]))
        assert headers == ["x", "double", "square"]
        assert rows == [[2, 4, 4], [3, 6, 9]]

    def test_column_selection_and_order(self):
        def run(x):
            return {"a": 1, "b": 2, "c": 3}

        headers, rows = sweep(run, grid(x=[0]), columns=["c", "a"])
        assert headers == ["x", "c", "a"]
        assert rows == [[0, 3, 1]]

    def test_validation(self):
        with pytest.raises(ExperimentError):
            sweep(lambda x: {"y": x}, [])
        with pytest.raises(ExperimentError):
            sweep(lambda **kw: {"y": 1}, [{"a": 1}, {"b": 2}])
        with pytest.raises(ExperimentError):
            sweep(lambda x: x, grid(x=[1]))  # not a dict
