"""Tests for the sweep helper."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.sweeps import grid, seeded, sweep


def _square_point(x, seed):
    """Module-level so worker processes can unpickle it."""
    import numpy as np

    rng = np.random.default_rng(seed)
    return {"square": x * x, "draw": float(rng.random())}


def _crashing_point(x):
    if x == 2:
        raise RuntimeError("worker blew up")
    return {"ok": x}


class TestGrid:
    def test_cartesian_product(self):
        points = grid(a=[1, 2], b=["x", "y"])
        assert len(points) == 4
        assert {"a": 2, "b": "y"} in points

    def test_single_axis(self):
        assert grid(a=[1]) == [{"a": 1}]

    def test_order_is_row_major(self):
        points = grid(a=[1, 2], b=[10, 20])
        assert points[0] == {"a": 1, "b": 10}
        assert points[1] == {"a": 1, "b": 20}

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            grid()


class TestSweep:
    def test_parameters_then_results(self):
        def run(x):
            return {"double": 2 * x, "square": x * x}

        headers, rows = sweep(run, grid(x=[2, 3]))
        assert headers == ["x", "double", "square"]
        assert rows == [[2, 4, 4], [3, 6, 9]]

    def test_column_selection_and_order(self):
        def run(x):
            return {"a": 1, "b": 2, "c": 3}

        headers, rows = sweep(run, grid(x=[0]), columns=["c", "a"])
        assert headers == ["x", "c", "a"]
        assert rows == [[0, 3, 1]]

    def test_validation(self):
        with pytest.raises(ExperimentError):
            sweep(lambda x: {"y": x}, [])
        with pytest.raises(ExperimentError):
            sweep(lambda **kw: {"y": 1}, [{"a": 1}, {"b": 2}])
        with pytest.raises(ExperimentError):
            sweep(lambda x: x, grid(x=[1]))  # not a dict
        with pytest.raises(ExperimentError):
            sweep(lambda x: {"y": x}, grid(x=[1]), workers=0)


class TestParallelSweep:
    def test_any_worker_count_matches_serial(self):
        points = seeded(grid(x=[1, 2, 3, 4, 5]), master_seed=9)
        serial = sweep(_square_point, points, workers=1)
        for workers in (2, 4):
            assert sweep(_square_point, points, workers=workers) == serial

    def test_worker_failure_names_the_point(self):
        points = grid(x=[1, 2, 3])
        with pytest.raises(ExperimentError, match=r"'x': 2"):
            sweep(_crashing_point, points, workers=2)

    def test_result_order_follows_point_order(self):
        points = grid(x=[5, 1, 3])
        _, rows = sweep(_square_point, seeded(points, master_seed=0), workers=3)
        assert [row[0] for row in rows] == [5, 1, 3]


class TestSeeded:
    def test_deterministic_and_index_keyed(self):
        points = grid(a=[10, 20])
        first = seeded(points, master_seed=5)
        second = seeded(points, master_seed=5)
        assert first == second
        assert all("seed" in p for p in first)
        # Seeds depend on the index, not the point's content.
        assert first[0]["seed"] != first[1]["seed"]

    def test_master_seed_changes_assignment(self):
        points = grid(a=[1])
        assert seeded(points, 1)[0]["seed"] != seeded(points, 2)[0]["seed"]

    def test_existing_key_rejected(self):
        with pytest.raises(ExperimentError):
            seeded([{"seed": 3}], master_seed=0)

    def test_originals_untouched(self):
        points = grid(a=[1])
        seeded(points, master_seed=0)
        assert points == [{"a": 1}]
