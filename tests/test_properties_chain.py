"""Property-based tests for the blockchain substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain import Block, Blockchain, InMemoryBlockStore, MerkleTree, audit_chain
from repro.chain.hashing import canonical_bytes, hash_value

# JSON-compatible scalars that serialise canonically (no NaN/inf).
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)
records = st.lists(
    st.dictionaries(st.text(min_size=1, max_size=8), scalars, max_size=5),
    max_size=12,
)


class TestCanonicalHashing:
    @given(st.dictionaries(st.text(min_size=1, max_size=6), scalars, max_size=8))
    def test_hash_independent_of_insertion_order(self, mapping):
        reordered = dict(reversed(list(mapping.items())))
        assert hash_value(mapping) == hash_value(reordered)

    @given(scalars, scalars)
    def test_distinct_scalars_distinct_bytes(self, a, b):
        if a != b or (a == b and type(a) is not type(b) and not (
            isinstance(a, (int, float)) and isinstance(b, (int, float))
        )):
            if a != b:
                assert canonical_bytes({"v": a}) != canonical_bytes({"v": b})


class TestMerkleProperties:
    @given(records)
    def test_every_proof_verifies(self, record_list):
        tree = MerkleTree(record_list)
        for i, record in enumerate(record_list):
            assert MerkleTree.verify_proof(record, tree.proof(i), tree.root)

    @given(records, st.integers(min_value=0, max_value=11))
    def test_mutated_leaf_fails_proof(self, record_list, index):
        if not record_list:
            return
        index %= len(record_list)
        tree = MerkleTree(record_list)
        proof = tree.proof(index)
        forged = dict(record_list[index]) if isinstance(record_list[index], dict) else {}
        forged["__forged__"] = True
        assert not MerkleTree.verify_proof(forged, proof, tree.root)

    @given(records)
    def test_root_deterministic(self, record_list):
        assert MerkleTree(record_list).root == MerkleTree(record_list).root

    @given(records)
    def test_every_proof_verifies_with_leaf_count(self, record_list):
        # The leaf-count-bound check (the CVE-2012-2459 guard) must not
        # reject any honest proof at any index, odd or even leaf count.
        tree = MerkleTree(record_list)
        n = len(record_list)
        for i, record in enumerate(record_list):
            assert MerkleTree.verify_proof(
                record, tree.proof(i), tree.root, leaf_count=n
            )

    @given(records, st.integers(min_value=0, max_value=11))
    def test_wrong_length_proof_rejected(self, record_list, index):
        if len(record_list) < 2:
            return
        index %= len(record_list)
        tree = MerkleTree(record_list)
        proof = tree.proof(index)
        truncated = proof[:-1]
        assert not MerkleTree.verify_proof(
            record_list[index], truncated, tree.root, leaf_count=len(record_list)
        )

    def test_forged_duplicate_rejected(self):
        # CVE-2012-2459: duplicating the last leaf yields the same root,
        # so an unbound proof "proves" a 4th record in a 3-record block.
        # Binding the leaf count kills the forgery.
        a, b, c = {"r": "A"}, {"r": "B"}, {"r": "C"}
        t3 = MerkleTree([a, b, c])
        t4 = MerkleTree([a, b, c, c])
        assert t3.root == t4.root
        forged = t4.proof(3)
        assert MerkleTree.verify_proof(c, forged, t3.root)
        assert not MerkleTree.verify_proof(c, forged, t3.root, leaf_count=3)
        assert MerkleTree.verify_proof(c, t4.proof(3), t4.root, leaf_count=4)

    def test_round_trip_every_index_at_small_counts(self):
        for n in (1, 2, 3, 4, 5, 7, 8):
            leaves = [{"i": i} for i in range(n)]
            tree = MerkleTree(leaves)
            for i in range(n):
                proof = tree.proof(i)
                assert len(proof) == MerkleTree.expected_proof_length(n)
                assert MerkleTree.verify_proof(
                    leaves[i], proof, tree.root, leaf_count=n
                )

    @given(records)
    def test_proof_length_logarithmic(self, record_list):
        tree = MerkleTree(record_list)
        n = max(1, len(record_list))
        bound = max(1, n.bit_length())
        for i in range(len(record_list)):
            assert len(tree.proof(i)) <= bound


class TestChainProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(records, min_size=1, max_size=6))
    def test_append_then_validate_always_clean(self, blocks):
        chain = Blockchain()
        for i, batch in enumerate(blocks):
            chain.append("agg1", float(i), batch)
        chain.validate()
        assert audit_chain(chain).clean

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(records, min_size=2, max_size=6),
        st.data(),
    )
    def test_any_record_mutation_detected(self, blocks, data):
        store = InMemoryBlockStore()
        chain = Blockchain(store)
        for i, batch in enumerate(blocks):
            chain.append("agg1", float(i), batch)
        # Pick any block and mutate its record list.
        height = data.draw(st.integers(min_value=0, max_value=chain.height - 1))
        victim = store.get(height)
        forged_records = list(victim.records) + [{"__forged__": True}]
        store.tamper(
            height, Block(victim.header, tuple(forged_records), victim.block_hash)
        )
        report = audit_chain(chain)
        assert not report.clean
        assert height in report.invalid_blocks

    @settings(max_examples=20, deadline=None)
    @given(st.lists(records, min_size=2, max_size=5), st.data())
    def test_rehashed_mutation_breaks_downstream_link(self, blocks, data):
        store = InMemoryBlockStore()
        chain = Blockchain(store)
        for i, batch in enumerate(blocks):
            chain.append("agg1", float(i), batch)
        height = data.draw(st.integers(min_value=0, max_value=chain.height - 2))
        victim = store.get(height)
        forged = Block.create(
            height=height,
            previous_hash=victim.header.previous_hash,
            aggregator=victim.header.aggregator,
            timestamp=victim.header.timestamp,
            records=list(victim.records) + [{"__forged__": True}],
        )
        store.tamper(height, forged)
        report = audit_chain(chain)
        assert not report.clean
        # The next block's previous-hash no longer matches.
        assert height + 1 in report.broken_links
