"""Tests for anomalous-device attribution (§IV future work)."""

import math

import numpy as np
import pytest

from repro.anomaly import DeviceAttributor, ScalingAttack
from repro.errors import AnomalyError
from repro.workloads.scenarios import build_paper_testbed


def synthetic_windows(attributor, alphas, windows=120, loss=0.04, seed=0, noise=0.2):
    """Feed windows where device i truly draws alpha_i * its report."""
    rng = np.random.default_rng(seed)
    for t in range(windows):
        reported = {
            name: 40.0 + 30.0 * math.sin(2 * math.pi * t / (11.0 + 7 * i))
            for i, name in enumerate(alphas)
        }
        feeder = (1 + loss) * sum(a * reported[n] for n, a in alphas.items())
        feeder += 3.0 + float(rng.normal(0, noise))
        attributor.add_window(reported, feeder)


class TestDeviceAttributorUnit:
    def test_honest_devices_all_alpha_one(self):
        attributor = DeviceAttributor(expected_loss_fraction=0.04)
        synthetic_windows(attributor, {"d1": 1.0, "d2": 1.0})
        result = attributor.estimate()
        assert result.suspects == []
        for alpha in result.alphas.values():
            assert alpha == pytest.approx(1.0, abs=0.05)
        assert result.intercept_ma == pytest.approx(3.0, abs=0.5)

    def test_underreporting_device_identified(self):
        attributor = DeviceAttributor(expected_loss_fraction=0.04)
        synthetic_windows(attributor, {"d1": 2.0, "d2": 1.0, "d3": 1.0})
        result = attributor.estimate()
        assert result.suspects == ["d1"]
        assert result.alphas["d1"] == pytest.approx(2.0, abs=0.1)

    def test_multiple_suspects_ranked_by_severity(self):
        attributor = DeviceAttributor()
        synthetic_windows(attributor, {"d1": 1.5, "d2": 3.0, "d3": 1.0})
        result = attributor.estimate()
        assert result.suspects == ["d2", "d1"]

    def test_recovered_true_consumption(self):
        attributor = DeviceAttributor()
        synthetic_windows(attributor, {"d1": 2.0, "d2": 1.0})
        result = attributor.estimate()
        assert result.recovered_true_ma("d1", 50.0) == pytest.approx(100.0, rel=0.1)
        with pytest.raises(AnomalyError):
            result.recovered_true_ma("ghost", 1.0)

    def test_needs_minimum_windows(self):
        attributor = DeviceAttributor(min_windows=50)
        assert not attributor.ready
        with pytest.raises(AnomalyError):
            attributor.estimate()

    def test_identical_profiles_refused(self):
        # Two devices reporting the same shape cannot be told apart;
        # attribution must refuse, not guess.
        attributor = DeviceAttributor()
        for t in range(100):
            value = 40.0 + 30.0 * math.sin(2 * math.pi * t / 11.0)
            attributor.add_window({"d1": value, "d2": value}, 2.08 * value + 3.0)
        with pytest.raises(AnomalyError):
            attributor.estimate()

    def test_partial_windows_skipped(self):
        attributor = DeviceAttributor(min_windows=10)
        synthetic_windows(attributor, {"d1": 1.0, "d2": 1.0}, windows=30)
        attributor.add_window({"d1": 40.0}, 45.0)  # d2 missing
        result = attributor.estimate()
        assert result.windows_used == 30

    def test_validation(self):
        with pytest.raises(AnomalyError):
            DeviceAttributor(expected_loss_fraction=-0.1)
        with pytest.raises(AnomalyError):
            DeviceAttributor(min_windows=1)
        with pytest.raises(AnomalyError):
            DeviceAttributor(suspicion_threshold=0.0)
        attributor = DeviceAttributor()
        with pytest.raises(AnomalyError):
            attributor.add_window({}, 10.0)
        with pytest.raises(AnomalyError):
            attributor.add_window({"d": 1.0}, -1.0)

    def test_bounded_history(self):
        attributor = DeviceAttributor(min_windows=10, max_windows=20)
        synthetic_windows(attributor, {"d1": 1.0, "d2": 1.0}, windows=50)
        assert attributor.window_count == 20


class TestAttributionIntegration:
    def test_fraudulent_device_identified_in_full_simulation(self):
        scenario = build_paper_testbed(seed=8)
        scenario.device("device1").tamper_attack = ScalingAttack(0.5)
        scenario.run_until(40.0)
        result = scenario.aggregator("agg1").attribute_anomaly()
        assert result.suspects == ["device1"]
        assert result.alphas["device1"] > 1.5
        assert result.alphas["device2"] == pytest.approx(1.0, abs=0.1)

    def test_honest_network_has_no_suspects(self):
        scenario = build_paper_testbed(seed=9)
        scenario.run_until(40.0)
        result = scenario.aggregator("agg2").attribute_anomaly()
        assert result.suspects == []
