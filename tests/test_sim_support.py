"""Tests for RNG streams, tracing and the Process base class."""

import pytest

from repro.errors import ConfigError
from repro.sim import Process, RngStreams, Simulator, TraceRecorder


class TestRngStreams:
    def test_same_name_same_stream_object(self):
        streams = RngStreams(0)
        assert streams.stream("a") is streams.stream("a")

    def test_different_names_independent(self):
        streams = RngStreams(0)
        a = streams.stream("a").random(4).tolist()
        b = streams.stream("b").random(4).tolist()
        assert a != b

    def test_reproducible_across_instances(self):
        a = RngStreams(123).stream("sensor").random(8).tolist()
        b = RngStreams(123).stream("sensor").random(8).tolist()
        assert a == b

    def test_master_seed_changes_streams(self):
        a = RngStreams(1).stream("x").random(4).tolist()
        b = RngStreams(2).stream("x").random(4).tolist()
        assert a != b

    def test_fork_is_deterministic_and_distinct(self):
        base = RngStreams(9)
        fork_a = base.fork("run-1").stream("x").random(4).tolist()
        fork_a2 = RngStreams(9).fork("run-1").stream("x").random(4).tolist()
        fork_b = base.fork("run-2").stream("x").random(4).tolist()
        assert fork_a == fork_a2
        assert fork_a != fork_b

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError):
            RngStreams(0).stream("")

    def test_bad_seed_rejected(self):
        with pytest.raises(ConfigError):
            RngStreams(-1)


class TestTraceRecorder:
    def test_records_in_order(self):
        recorder = TraceRecorder()
        recorder.record(1.0, "a", "x")
        recorder.record(2.0, "b", "y")
        assert [r.category for r in recorder] == ["a", "b"]

    def test_by_category_and_actor(self):
        recorder = TraceRecorder()
        recorder.record(1.0, "a", "x", value=1)
        recorder.record(2.0, "a", "y")
        recorder.record(3.0, "b", "x")
        assert len(recorder.by_category("a")) == 2
        assert len(recorder.by_actor("x")) == 2

    def test_between_half_open(self):
        recorder = TraceRecorder()
        for t in (1.0, 2.0, 3.0):
            recorder.record(t, "c", "x")
        assert [r.time for r in recorder.between(1.0, 3.0)] == [1.0, 2.0]

    def test_first_and_last(self):
        recorder = TraceRecorder()
        recorder.record(1.0, "c", "x", n=1)
        recorder.record(2.0, "c", "x", n=2)
        assert recorder.first("c").detail["n"] == 1
        assert recorder.last("c").detail["n"] == 2
        assert recorder.first("missing") is None
        assert recorder.last("missing") is None

    def test_disabled_records_nothing(self):
        recorder = TraceRecorder(enabled=False)
        recorder.record(1.0, "c", "x")
        assert len(recorder) == 0

    def test_category_filter(self):
        recorder = TraceRecorder(categories=["keep"])
        recorder.record(1.0, "keep", "x")
        recorder.record(2.0, "drop", "x")
        assert len(recorder) == 1

    def test_clear(self):
        recorder = TraceRecorder()
        recorder.record(1.0, "c", "x")
        recorder.clear()
        assert len(recorder) == 0


class TestProcess:
    def test_process_rng_is_namespaced(self):
        sim = Simulator(seed=0)
        p1 = Process(sim, "p1")
        p2 = Process(sim, "p2")
        assert p1.rng().random(3).tolist() != p2.rng().random(3).tolist()

    def test_process_trace_carries_actor_and_time(self):
        sim = Simulator()
        proc = Process(sim, "me")
        sim.schedule(1.5, lambda: proc.trace("cat", key="v"))
        sim.run()
        record = sim.trace.first("cat")
        assert record.actor == "me"
        assert record.time == 1.5
        assert record.detail == {"key": "v"}

    def test_now_follows_clock(self):
        sim = Simulator()
        proc = Process(sim, "p")
        sim.run_until(2.0)
        assert proc.now == 2.0

    def test_repr_contains_name(self):
        assert "p" in repr(Process(Simulator(), "p"))
