"""Edge-case integration tests: weak links, overflow, persistence, determinism."""

from repro.chain import Blockchain, JsonlBlockStore
from repro.device.stack import DeviceConfig
from repro.experiments.validate import run_validation
from repro.workloads.scenarios import build_paper_testbed


class TestWeakLink:
    def test_distant_device_still_fully_metered(self):
        # 60 m from the AP: RSSI is marginal, QoS-1 retries carry it.
        scenario = build_paper_testbed(seed=81, enter_devices=False)
        scenario.enter_at("device1", "agg1", 0.0, distance_m=60.0)
        scenario.run_until(25.0)
        device = scenario.device("device1")
        assert device.fsm.can_report
        records = scenario.chain.records_for_device(device.device_id.uid)
        # 10 Hz for ~19 reporting seconds, minus whatever is in flight.
        assert len(records) > 150
        scenario.chain.validate()

    def test_very_weak_link_loses_little_energy(self):
        scenario = build_paper_testbed(seed=82, enter_devices=False)
        scenario.enter_at("device1", "agg1", 0.0, distance_m=60.0)
        scenario.run_until(25.0)
        device = scenario.device("device1")
        ledger = scenario.chain.total_energy_mwh(device.device_id.uid)
        # Everything measured is either in the ledger, buffered, or in flight.
        assert ledger > 0.8 * device.meter.total_energy_mwh


class TestStorageOverflow:
    def test_long_outage_with_tiny_store_drops_oldest_observably(self):
        config = DeviceConfig(storage_capacity=50)
        scenario = build_paper_testbed(seed=83, device_config=config)
        scenario.run_until(12.0)
        device = scenario.device("device1")
        device.drop_connection()
        scenario.run_until(30.0)  # 18 s of 10 Hz -> 180 > 50 capacity
        assert device.store.pending == 50
        assert device.store.dropped_total > 100
        device.reconnect()
        scenario.run_until(40.0)
        records = scenario.chain.records_for_device(device.device_id.uid)
        # The newest ~5 s of the outage (50 records at 10 Hz) survive —
        # reconnect takes ~1.5 s, evicting a few more of the oldest.
        survived = [
            r for r in records
            if r["buffered"] and 26.5 < float(r["measured_at"]) < 31.5
        ]
        assert len(survived) >= 40
        # The early outage span was evicted: nothing from it committed.
        evicted_span = [
            r for r in records if 13.0 < float(r["measured_at"]) < 20.0
        ]
        assert evicted_span == []


class TestPersistence:
    def test_scenario_with_jsonl_ledger_survives_reload(self, tmp_path):
        path = tmp_path / "chain.jsonl"
        # Build a testbed whose chain writes through to disk.
        scenario = build_paper_testbed(seed=84, enter_devices=False)
        disk_chain = Blockchain(JsonlBlockStore(path), authorized=set())
        # Swap the chain in before any block exists.
        for unit in scenario.aggregators.values():
            disk_chain.authorize(unit.aggregator_id.name)
            unit._writer._chain = disk_chain
        scenario.chain = disk_chain
        scenario.enter_at("device1", "agg1", 0.0)
        scenario.run_until(12.0)
        height_live = disk_chain.height
        assert height_live > 0

        # A fresh process (new store instance) sees the same chain.
        reloaded = Blockchain(JsonlBlockStore(path))
        assert reloaded.height == height_live
        reloaded.validate()
        assert reloaded.tip_hash == disk_chain.tip_hash


class TestDeterminism:
    def test_same_seed_byte_identical_ledger(self):
        def run(seed):
            scenario = build_paper_testbed(seed=seed)
            scenario.run_until(15.0)
            return [block.block_hash for block in scenario.chain]

        assert run(99) == run(99)

    def test_different_seed_different_ledger(self):
        def run(seed):
            scenario = build_paper_testbed(seed=seed)
            scenario.run_until(10.0)
            return scenario.chain.tip_hash

        assert run(1) != run(2)

    def test_mobility_run_deterministic(self):
        from repro.experiments.fig6 import run_fig6

        a = run_fig6(seed=5, phase1_s=10.0, idle_s=4.0, phase2_s=10.0)
        b = run_fig6(seed=5, phase1_s=10.0, idle_s=4.0, phase2_s=10.0)
        assert a.handshake_s == b.handshake_s
        assert a.consumption_values == b.consumption_values


class TestValidationHarness:
    def test_all_self_checks_pass(self):
        results = run_validation()
        failing = [r for r in results if not r.passed]
        assert not failing, failing
