"""Integration tests for RTC discipline in the full simulation."""

import pytest

from repro.workloads.scenarios import build_paper_testbed


class TestTimeSyncIntegration:
    def test_devices_registered_with_network_timesync(self):
        scenario = build_paper_testbed(seed=61)
        scenario.run_until(10.0)
        agg1 = scenario.aggregator("agg1")
        # Two devices' RTCs are under discipline.
        agg1.timesync.sync_now()
        assert agg1.timesync.rounds >= 1

    def test_rtc_error_bounded_by_sync_interval(self):
        from repro.aggregator.unit import AggregatorConfig

        scenario = build_paper_testbed(
            seed=62,
            aggregator_config=AggregatorConfig(timesync_interval_s=30.0),
        )
        scenario.run_until(120.0)
        now = scenario.simulator.now
        for name in ("device1", "device2"):
            rtc = scenario.device(name).rtc
            # Residual error bounded by interval x ppm (30 s x 2 ppm).
            assert abs(rtc.error_at(now)) <= 30.0 * 2e-6 + 1e-9

    def test_clock_unregistered_on_leave(self):
        scenario = build_paper_testbed(seed=63)
        scenario.run_until(10.0)
        device = scenario.device("device1")
        agg1 = scenario.aggregator("agg1")
        device.leave_network()
        agg1.timesync.sync_now()
        # device2's clock is still disciplined; device1's is gone —
        # syncing again immediately yields ~zero correction either way,
        # so instead verify re-entering re-registers it.
        scenario.simulator.schedule(
            12.0, lambda: device.enter_network(agg1)
        )
        scenario.run_until(25.0)
        assert device.fsm.can_report

    def test_report_timestamps_stay_close_to_sim_time(self):
        scenario = build_paper_testbed(seed=64)
        scenario.run_until(30.0)
        records = scenario.chain.records_for_device(
            scenario.device("device1").device_id.uid
        )
        # measured_at uses the disciplined RTC: offsets from true time
        # never exceed a few hundred microseconds at these spans.
        for record in records:
            measured = float(record["measured_at"])
            assert measured == pytest.approx(measured, abs=1e-3)
        assert records
