"""ScenarioSpec / SimContext runtime tests.

Covers the declarative-spec contract end to end:

* lossless round-trip — ``from_dict(to_dict())`` and the JSON path
  reproduce the spec exactly, over hypothesis-generated specs,
* determinism — the spec-built paper testbed reproduces the ledger
  digest the imperative builder produced before the refactor,
* provenance — ``snapshot()`` carries the master seed and the
  originating spec,
* unified counters — every layer (devices, aggregators, mesh,
  channel, chain, faults) emits into one shared :class:`CounterBank`,
* the ``repro-experiments --scenario`` CLI path.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.errors import ConfigError
from repro.runtime import (
    DeviceSpec,
    FaultSpec,
    MeshSpec,
    NetworkSpec,
    ProfileSpec,
    ScenarioSpec,
    SimContext,
    build,
)
from repro.workloads.scenarios import paper_testbed_spec, scaled_spec

# Ledger tip hash of build_paper_testbed(seed=7) run to t=30.0, captured
# on the pre-refactor imperative builder. The spec path must reproduce
# it bit for bit.
PAPER_TESTBED_SEED7_DIGEST = (
    "bcca848983a69021572fb962b4887cd30c9e19978987dc1c0766c87eec59b70e"
)

_name = st.text(alphabet="abcdefgh123", min_size=1, max_size=8)
_finite = st.floats(
    min_value=0.001, max_value=1000.0, allow_nan=False, allow_infinity=False
)

_profiles = st.one_of(
    st.builds(
        ProfileSpec,
        kind=st.just("constant"),
        params=st.fixed_dictionaries({"current_ma": _finite}),
    ),
    st.builds(
        ProfileSpec,
        kind=st.just("duty_cycle"),
        params=st.fixed_dictionaries(
            {
                "high_ma": _finite,
                "low_ma": _finite,
                "period_s": _finite,
                "duty": st.floats(min_value=0.05, max_value=0.95),
            }
        ),
    ),
    st.builds(
        ProfileSpec,
        kind=st.just("sinusoid"),
        params=st.fixed_dictionaries(
            {
                "mean_ma": st.floats(min_value=100.0, max_value=500.0),
                "amplitude_ma": st.floats(min_value=0.0, max_value=100.0),
                "period_s": _finite,
                "phase_s": _finite,
            }
        ),
    ),
)


@st.composite
def scenario_specs(draw):
    """A valid ScenarioSpec with coherent cross-references."""
    network_names = draw(
        st.lists(_name, min_size=1, max_size=4, unique=True)
    )
    networks = tuple(
        NetworkSpec(
            name=name,
            supply_voltage_v=draw(st.floats(min_value=1.0, max_value=48.0)),
            wire_resistance_ohms=draw(st.floats(min_value=0.0, max_value=2.0)),
            wire_leakage_ma=draw(st.floats(min_value=0.0, max_value=10.0)),
            slot_count=draw(st.one_of(st.none(), st.integers(4, 64))),
        )
        for name in network_names
    )
    device_names = draw(
        st.lists(
            _name.map(lambda s: "dev-" + s), min_size=0, max_size=5, unique=True
        )
    )
    devices = tuple(
        DeviceSpec(
            name=name,
            network=draw(st.sampled_from(network_names)),
            profile=draw(_profiles),
            enter_at=draw(
                st.one_of(st.none(), st.floats(min_value=0.0, max_value=30.0))
            ),
            distance_m=draw(st.floats(min_value=0.5, max_value=50.0)),
        )
        for name in device_names
    )
    mesh = MeshSpec(
        topology=draw(st.sampled_from(("full", "line", "star"))),
        latency_s=draw(st.floats(min_value=1e-4, max_value=0.5)),
    )
    faults = []
    if draw(st.booleans()):
        faults.append(
            FaultSpec(
                kind="channel_blackout",
                name="blackout",
                start_at=draw(st.floats(min_value=0.0, max_value=20.0)),
                duration_s=draw(st.floats(min_value=0.5, max_value=20.0)),
                target="radio",
            )
        )
    if draw(st.booleans()):
        faults.append(
            FaultSpec(
                kind="broker_noise",
                name="noise",
                start_at=draw(st.floats(min_value=0.0, max_value=20.0)),
                target=draw(st.sampled_from(network_names)),
                params={"drop_p": draw(st.floats(min_value=0.0, max_value=0.9))},
            )
        )
    return ScenarioSpec(
        name=draw(_name),
        seed=draw(st.integers(min_value=0, max_value=2**32)),
        t_measure_s=draw(st.floats(min_value=0.01, max_value=5.0)),
        device_retry=draw(st.booleans()),
        networks=networks,
        devices=devices,
        mesh=mesh,
        faults=tuple(faults),
    )


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(scenario_specs())
    def test_dict_round_trip_is_identity(self, spec):
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    @settings(max_examples=60, deadline=None)
    @given(scenario_specs())
    def test_json_round_trip_is_identity(self, spec):
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    @settings(max_examples=30, deadline=None)
    @given(scenario_specs())
    def test_to_dict_is_json_serializable(self, spec):
        # json round-trip of the dict must not change it either
        data = spec.to_dict()
        assert json.loads(json.dumps(data)) == data

    def test_unknown_keys_rejected(self):
        data = paper_testbed_spec().to_dict()
        data["bogus"] = 1
        with pytest.raises(ConfigError):
            ScenarioSpec.from_dict(data)

    def test_device_unknown_network_rejected(self):
        with pytest.raises(ConfigError):
            ScenarioSpec(
                networks=(NetworkSpec(name="agg1"),),
                devices=(
                    DeviceSpec(
                        name="d1",
                        network="nope",
                        profile=ProfileSpec("constant", {"current_ma": 10.0}),
                    ),
                ),
            )


class TestDeterminism:
    def test_paper_testbed_matches_pre_refactor_digest(self):
        scenario = build(paper_testbed_spec(seed=7))
        scenario.run_until(30.0)
        assert scenario.chain.tip_hash == PAPER_TESTBED_SEED7_DIGEST

    def test_observed_paper_testbed_matches_pinned_digest(self):
        # Spans + profiler are pure observation: an instrumented run
        # must reproduce the pinned ledger digest bit for bit.
        import dataclasses

        from repro.runtime import ObsSpec

        spec = dataclasses.replace(
            paper_testbed_spec(seed=7), obs=ObsSpec(enabled=True)
        )
        scenario = build(spec)
        scenario.run_until(30.0)
        assert scenario.chain.tip_hash == PAPER_TESTBED_SEED7_DIGEST
        assert len(scenario.simulator.spans) > 0
        assert scenario.simulator.profiler is not None

    def test_ledger_defaults_preserve_pinned_digest(self):
        # A LedgerSpec on every axis' default (sync off, no
        # checkpoints, no pruning) must build the exact pre-ledger-sync
        # world: the chainsync subscription draws no randomness and the
        # sync task never arms.
        import dataclasses

        from repro.runtime import LedgerSpec

        spec = dataclasses.replace(paper_testbed_spec(seed=7), ledger=LedgerSpec())
        scenario = build(spec)
        scenario.run_until(30.0)
        assert scenario.chain.tip_hash == PAPER_TESTBED_SEED7_DIGEST

    def test_same_spec_builds_identical_worlds(self):
        spec = scaled_spec(n_networks=2, devices_per_network=3, seed=11)
        digests = []
        for _ in range(2):
            scenario = build(spec)
            scenario.run_until(12.0)
            digests.append(scenario.chain.tip_hash)
        assert digests[0] == digests[1]

    def test_json_round_tripped_spec_builds_identical_world(self):
        spec = paper_testbed_spec(seed=7)
        revived = ScenarioSpec.from_json(spec.to_json())
        scenario = build(revived)
        scenario.run_until(30.0)
        assert scenario.chain.tip_hash == PAPER_TESTBED_SEED7_DIGEST


class TestProvenance:
    def test_snapshot_carries_seed_spec_and_digest(self):
        spec = paper_testbed_spec(seed=42)
        scenario = build(spec)
        scenario.run_until(5.0)
        snap = scenario.snapshot()
        assert snap["master_seed"] == 42
        assert snap["spec"] == spec.to_dict()
        assert snap["ledger_digest"] == scenario.chain.tip_hash
        assert json.loads(json.dumps(snap, default=str))  # JSON-safe

    def test_scenario_records_originating_spec(self):
        spec = paper_testbed_spec(seed=3)
        scenario = build(spec)
        assert scenario.spec == spec
        assert scenario.master_seed == 3


class TestUnifiedCounters:
    def test_all_layers_share_one_counter_bank(self):
        scenario = build(paper_testbed_spec(seed=1))
        scenario.run_until(10.0)
        bank = scenario.counters
        assert bank is scenario.context.counters
        # one bank is visible from every layer's process
        for device in scenario.devices.values():
            assert device.counters is bank
        for unit in scenario.aggregators.values():
            assert unit.counters is bank
        assert scenario.mesh.counters is bank
        snapshot = bank.snapshot()
        assert any(key.startswith("chain.") for key in snapshot)
        assert any(key.startswith("device") for key in snapshot)
        assert any(".blocks_written" in key for key in snapshot)
        assert any(".acks_sent" in key for key in snapshot)

    def test_fault_plan_shares_the_bank(self):
        spec = paper_testbed_spec(
            seed=5,
            faults=(
                FaultSpec(
                    kind="channel_blackout",
                    name="radio-blackout",
                    start_at=2.0,
                    duration_s=3.0,
                    target="radio",
                ),
            ),
        )
        scenario = build(spec)
        scenario.run_until(10.0)
        assert scenario.fault_plan is not None
        assert scenario.fault_plan.counters is scenario.counters
        assert scenario.counters.get("fault.radio-blackout.activations") == 1

    def test_context_create_wires_clock_and_streams(self):
        ctx = SimContext.create(seed=9)
        assert ctx.master_seed == 9
        first = ctx.stream("x").random()
        assert first == SimContext.create(seed=9).stream("x").random()


class TestCliScenario:
    def test_scenario_flag_runs_spec_file(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(paper_testbed_spec(seed=7).to_json())
        code = main(["--scenario", str(spec_file), "--until", "5"])
        assert code == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["master_seed"] == 7
        assert snap["spec"]["name"] == "paper-testbed"
        assert snap["time"] == 5.0

    def test_scenario_flag_writes_snapshot_with_out(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(
            scaled_spec(n_networks=1, devices_per_network=2, seed=4).to_json()
        )
        out_dir = tmp_path / "out"
        code = main(
            ["--scenario", str(spec_file), "--until", "3", "--out", str(out_dir)]
        )
        assert code == 0
        capsys.readouterr()
        written = json.loads((out_dir / "scenario_snapshot.json").read_text())
        assert written["master_seed"] == 4
