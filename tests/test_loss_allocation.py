"""Tests for pro-rata grid-loss allocation."""

import pytest

from repro.aggregator.aggregation import ReportAggregator
from repro.billing import allocate_losses
from repro.errors import BillingError
from repro.ids import DeviceId
from repro.workloads.scenarios import build_paper_testbed


def make_aggregation(windows):
    """windows: list of (start, {device: mA}, feeder_mA)."""
    aggregation = ReportAggregator(window_s=1.0)
    for start, reports, feeder in windows:
        for device, value in reports.items():
            aggregation.add_report(DeviceId(device), start + 0.5, value)
        aggregation.add_feeder_sample(start + 0.5, feeder)
    return aggregation


class TestAllocateLosses:
    def test_pro_rata_split(self):
        aggregation = make_aggregation(
            [(0.0, {"a": 75.0, "b": 25.0}, 110.0)]  # 10 mA loss
        )
        allocation = allocate_losses(aggregation, (0.0, 10.0))
        assert allocation.per_device_ma_s["a"] == pytest.approx(7.5)
        assert allocation.per_device_ma_s["b"] == pytest.approx(2.5)
        assert allocation.share_of("a") == pytest.approx(0.75)

    def test_loss_conservation(self):
        aggregation = make_aggregation(
            [
                (0.0, {"a": 50.0, "b": 50.0}, 104.0),
                (1.0, {"a": 80.0, "b": 20.0}, 107.0),
            ]
        )
        allocation = allocate_losses(aggregation, (0.0, 10.0))
        assert allocation.total_loss_ma_s == pytest.approx(4.0 + 7.0)
        assert allocation.windows_used == 2

    def test_negative_gap_clamped(self):
        aggregation = make_aggregation([(0.0, {"a": 100.0}, 95.0)])
        allocation = allocate_losses(aggregation, (0.0, 10.0))
        assert allocation.total_loss_ma_s == 0.0
        assert allocation.share_of("a") == 0.0

    def test_period_filter(self):
        aggregation = make_aggregation(
            [(0.0, {"a": 50.0}, 55.0), (5.0, {"a": 50.0}, 60.0)]
        )
        allocation = allocate_losses(aggregation, (4.0, 10.0))
        assert allocation.total_loss_ma_s == pytest.approx(10.0)

    def test_energy_conversion(self):
        aggregation = make_aggregation([(0.0, {"a": 100.0}, 136.0)])
        allocation = allocate_losses(aggregation, (0.0, 10.0))
        # 36 mA·s at 5 V -> 36 * 5 / 3600 mWh = 0.05 mWh.
        assert allocation.loss_energy_mwh("a", 5.0) == pytest.approx(0.05)
        with pytest.raises(BillingError):
            allocation.loss_energy_mwh("a", 0.0)

    def test_invalid_period(self):
        aggregation = make_aggregation([(0.0, {"a": 1.0}, 1.0)])
        with pytest.raises(BillingError):
            allocate_losses(aggregation, (5.0, 1.0))

    def test_allocation_from_real_run_matches_fig5_gap(self):
        scenario = build_paper_testbed(seed=71)
        scenario.run_until(30.0)
        agg1 = scenario.aggregator("agg1")
        allocation = allocate_losses(agg1.aggregation, (10.0, 30.0))
        # Both devices carry some of the loss, and the heavier consumer
        # (device1's sinusoid has the larger mean) carries more.
        share1 = allocation.share_of("device1")
        share2 = allocation.share_of("device2")
        assert share1 + share2 == pytest.approx(1.0)
        assert share1 > share2
        assert allocation.total_loss_ma_s > 0
