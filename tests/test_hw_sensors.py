"""Tests for the INA219 and DS3231 hardware models."""

import numpy as np
import pytest

from repro.errors import ConfigError, HardwareError, SensorRangeError
from repro.hw import Ds3231Rtc, Ina219, Ina219Config


def make_sensor(seed=0, **overrides) -> Ina219:
    return Ina219(Ina219Config(**overrides), np.random.default_rng(seed))


class TestIna219Config:
    def test_default_lsb_matches_12bit_400ma(self):
        config = Ina219Config()
        assert config.lsb_ma == pytest.approx(800.0 / 4096)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("shunt_ohms", 0.0),
            ("range_ma", -1.0),
            ("adc_bits", 4),
            ("adc_bits", 20),
            ("offset_max_ma", -0.1),
            ("gain_error_max", -0.01),
            ("noise_std_ma", -1.0),
        ],
    )
    def test_invalid_config_rejected(self, field, value):
        with pytest.raises(ConfigError):
            Ina219Config(**{field: value})


class TestIna219:
    def test_offset_within_datasheet_bound(self):
        for seed in range(30):
            sensor = make_sensor(seed)
            assert abs(sensor.offset_ma) <= 0.5

    def test_gain_near_unity(self):
        for seed in range(30):
            sensor = make_sensor(seed)
            assert 0.99 <= sensor.gain <= 1.01

    def test_instances_have_distinct_errors(self):
        offsets = {make_sensor(seed).offset_ma for seed in range(10)}
        assert len(offsets) > 1

    def test_reading_close_to_truth(self):
        sensor = make_sensor(3)
        readings = [sensor.measure_ma(100.0) for _ in range(200)]
        # Mean error bounded by gain (1 mA) + offset (0.5 mA) + LSB.
        assert abs(float(np.mean(readings)) - 100.0) < 2.0

    def test_reading_quantised_to_lsb(self):
        sensor = make_sensor(1, noise_std_ma=0.0)
        lsb = sensor.config.lsb_ma
        reading = sensor.measure_ma(123.4)
        assert reading / lsb == pytest.approx(round(reading / lsb))

    def test_zero_noise_zero_offset_zero_gain_is_exact_quantised(self):
        sensor = make_sensor(5, noise_std_ma=0.0, offset_max_ma=0.0, gain_error_max=0.0)
        lsb = sensor.config.lsb_ma
        assert sensor.measure_ma(10 * lsb) == pytest.approx(10 * lsb)

    def test_out_of_range_raises(self):
        sensor = make_sensor()
        with pytest.raises(SensorRangeError):
            sensor.measure_ma(401.0)
        with pytest.raises(SensorRangeError):
            sensor.measure_ma(-401.0)

    def test_reading_counter(self):
        sensor = make_sensor()
        for _ in range(5):
            sensor.measure_ma(1.0)
        assert sensor.readings_taken == 5

    def test_shunt_drop(self):
        sensor = make_sensor()
        # 100 mA through 0.1 ohm drops 10 mV.
        assert sensor.shunt_drop_v(100.0) == pytest.approx(0.01)

    def test_offset_error_drives_bias(self):
        # A sensor with pure offset reads truth + offset on average.
        sensor = make_sensor(7, noise_std_ma=0.0, gain_error_max=0.0)
        reading = sensor.measure_ma(200.0)
        assert reading == pytest.approx(200.0 + sensor.offset_ma, abs=sensor.config.lsb_ma)


class TestDs3231:
    def test_ppm_within_bound(self):
        for seed in range(30):
            rtc = Ds3231Rtc(np.random.default_rng(seed))
            assert abs(rtc.ppm) <= 2.0

    def test_error_grows_linearly(self):
        rtc = Ds3231Rtc(np.random.default_rng(0), aging_ppm_per_year=0.0)
        e1 = rtc.error_at(3600.0)
        e2 = rtc.error_at(7200.0)
        assert e2 == pytest.approx(2 * e1, rel=1e-6)

    def test_error_magnitude_after_an_hour(self):
        rtc = Ds3231Rtc(np.random.default_rng(1), aging_ppm_per_year=0.0)
        assert abs(rtc.error_at(3600.0)) <= 2.0 * 3600 * 1e-6 + 1e-12

    def test_synchronize_zeroes_error(self):
        rtc = Ds3231Rtc(np.random.default_rng(2))
        rtc.synchronize(1000.0)
        assert rtc.error_at(1000.0) == pytest.approx(0.0, abs=1e-12)

    def test_synchronize_returns_correction(self):
        rtc = Ds3231Rtc(np.random.default_rng(3), aging_ppm_per_year=0.0)
        expected_error = rtc.error_at(500.0)
        correction = rtc.synchronize(500.0)
        assert correction == pytest.approx(-expected_error)

    def test_read_before_sync_rejected(self):
        rtc = Ds3231Rtc(np.random.default_rng(0))
        rtc.synchronize(100.0)
        with pytest.raises(HardwareError):
            rtc.read(50.0)

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigError):
            Ds3231Rtc(np.random.default_rng(0), ppm_max=-1.0)
        with pytest.raises(ConfigError):
            Ds3231Rtc(np.random.default_rng(0), aging_ppm_per_year=-0.1)
