"""Property-based tests for traces, attribution and receipts."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anomaly import DeviceAttributor
from repro.chain import Blockchain, issue_receipt
from repro.workloads import TraceProfile

breakpoints = st.lists(
    st.floats(min_value=0.001, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=20,
).map(lambda deltas: [0.0] + [round(sum(deltas[: i + 1]), 6) for i in range(len(deltas))])

currents = st.lists(
    st.floats(min_value=0.0, max_value=400.0, allow_nan=False),
    min_size=2,
    max_size=21,
)


class TestTraceProperties:
    @settings(max_examples=50, deadline=None)
    @given(breakpoints, currents, st.floats(min_value=-10, max_value=500, allow_nan=False))
    def test_value_is_always_a_breakpoint_current_or_zero(self, times, values, query):
        n = min(len(times), len(values))
        profile = TraceProfile(times[:n], values[:n])
        result = profile(query)
        assert result == 0.0 or result in values[:n]

    @settings(max_examples=50, deadline=None)
    @given(breakpoints, currents)
    def test_csv_roundtrip_pointwise(self, times, values):
        n = min(len(times), len(values))
        profile = TraceProfile(times[:n], values[:n])
        reloaded = TraceProfile.from_csv(profile.to_csv())
        for i in range(n):
            t = times[i]
            assert reloaded(t) == profile(t)

    @settings(max_examples=30, deadline=None)
    @given(breakpoints, currents, st.floats(min_value=0, max_value=300, allow_nan=False))
    def test_repeat_is_periodic(self, times, values, query):
        n = min(len(times), len(values))
        profile = TraceProfile(times[:n], values[:n], repeat=True)
        span = profile.span_s
        # Float modulo can land a query sitting (within ulps) on a
        # breakpoint boundary on either side; skip those knife edges.
        offset = query % span
        edges = list(times[:n]) + [span]
        if min(abs(offset - e) for e in edges) < 1e-6:
            return
        assert profile(query) == profile(query + span)


class TestAttributionProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.floats(min_value=1.2, max_value=4.0, allow_nan=False),
        st.integers(min_value=0, max_value=100),
    )
    def test_single_cheater_always_found(self, alpha, seed_offset):
        """Whatever the fraud factor, the cheater tops the suspect list."""
        attributor = DeviceAttributor(expected_loss_fraction=0.0, min_windows=40)
        for t in range(80):
            reported = {
                "cheat": 30.0 + 20.0 * math.sin(2 * math.pi * (t + seed_offset) / 13.0),
                "honest": 50.0 + 25.0 * math.sin(2 * math.pi * t / 7.0),
            }
            feeder = alpha * reported["cheat"] + reported["honest"]
            attributor.add_window(reported, feeder)
        result = attributor.estimate()
        assert result.suspects and result.suspects[0] == "cheat"
        assert abs(result.alphas["cheat"] - alpha) < 0.15
        assert abs(result.alphas["honest"] - 1.0) < 0.1


records_lists = st.lists(
    st.dictionaries(
        st.sampled_from(["device", "device_uid", "energy_mwh", "sequence"]),
        st.one_of(st.text(max_size=6), st.integers(-100, 100)),
        min_size=1,
        max_size=4,
    ),
    min_size=1,
    max_size=10,
)


class TestReceiptProperties:
    @settings(max_examples=40, deadline=None)
    @given(records_lists, st.data())
    def test_every_issued_receipt_verifies(self, records, data):
        chain = Blockchain()
        chain.append("agg1", 0.0, records)
        index = data.draw(st.integers(min_value=0, max_value=len(records) - 1))
        receipt = issue_receipt(chain, 0, index)
        assert receipt.verify()
        assert receipt.verify(chain)

    @settings(max_examples=40, deadline=None)
    @given(records_lists, st.data())
    def test_altered_receipt_record_never_verifies(self, records, data):
        chain = Blockchain()
        chain.append("agg1", 0.0, records)
        index = data.draw(st.integers(min_value=0, max_value=len(records) - 1))
        receipt = issue_receipt(chain, 0, index)
        forged = type(receipt)(
            block_height=receipt.block_height,
            block_hash=receipt.block_hash,
            merkle_root=receipt.merkle_root,
            leaf_count=receipt.leaf_count,
            record={**receipt.record, "__forged__": 1},
            proof=receipt.proof,
        )
        assert not forged.verify()
