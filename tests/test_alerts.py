"""Tests for the alerting layer."""

import pytest

from repro.errors import ConfigError
from repro.monitoring import (
    AlertCondition,
    AlertManager,
    AlertRule,
    SeriesBank,
)
from repro.workloads.scenarios import build_paper_testbed


def bank_with(name="feeder", samples=()):
    bank = SeriesBank()
    for t, v in samples:
        bank.record(name, t, v)
    return bank


class TestAlertRule:
    def test_breach_directions(self):
        above = AlertRule("hi", "s", AlertCondition.ABOVE, 10.0)
        below = AlertRule("lo", "s", AlertCondition.BELOW, 5.0)
        assert above.breached(11.0) and not above.breached(9.0)
        assert below.breached(4.0) and not below.breached(6.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            AlertRule("", "s", AlertCondition.ABOVE, 1.0)
        with pytest.raises(ConfigError):
            AlertRule("r", "s", AlertCondition.ABOVE, 1.0, window_s=0.0)


class TestAlertManager:
    def test_fires_on_sustained_breach(self):
        bank = bank_with(samples=[(t * 0.1, 100.0) for t in range(20)])
        manager = AlertManager(bank)
        manager.add_rule(
            AlertRule("overload", "feeder", AlertCondition.ABOVE, 50.0, window_s=1.0)
        )
        fired = manager.evaluate(2.0)
        assert len(fired) == 1
        assert "overload" in manager.firing
        assert "feeder" in fired[0].message

    def test_no_storm_while_firing(self):
        bank = bank_with(samples=[(t * 0.1, 100.0) for t in range(50)])
        manager = AlertManager(bank)
        manager.add_rule(
            AlertRule("overload", "feeder", AlertCondition.ABOVE, 50.0)
        )
        manager.evaluate(2.0)
        assert manager.evaluate(3.0) == []
        assert len(manager.alerts) == 1

    def test_rearms_after_recovery(self):
        bank = SeriesBank()
        for t in range(10):
            bank.record("feeder", t * 0.1, 100.0)
        for t in range(10, 30):
            bank.record("feeder", t * 0.1, 1.0)
        for t in range(30, 40):
            bank.record("feeder", t * 0.1, 100.0)
        manager = AlertManager(bank)
        manager.add_rule(AlertRule("overload", "feeder", AlertCondition.ABOVE, 50.0))
        manager.evaluate(0.95)   # breach 1
        manager.evaluate(2.5)    # recovered -> re-arm
        manager.evaluate(3.9)    # breach 2
        assert len(manager.alerts) == 2

    def test_no_data_clears_stale_firing_state(self):
        # Pre-fix an empty evaluation window left `firing` set, so a
        # series that stopped producing samples stayed "firing" forever
        # and a later, genuinely new breach never re-alerted.
        bank = bank_with(samples=[(t * 0.1, 100.0) for t in range(10)])
        manager = AlertManager(bank)
        manager.add_rule(
            AlertRule("overload", "feeder", AlertCondition.ABOVE, 50.0, window_s=1.0)
        )
        assert len(manager.evaluate(0.95)) == 1
        # The series went silent: one empty window re-arms the rule.
        assert manager.evaluate(5.0) == []
        assert manager.firing == []
        # Data returns, still breaching: that is a fresh excursion.
        bank.record("feeder", 10.0, 100.0)
        fired = manager.evaluate(10.5)
        assert len(fired) == 1
        assert len(manager.alerts) == 2

    def test_missing_series_is_quiet(self):
        manager = AlertManager(SeriesBank())
        manager.add_rule(AlertRule("r", "ghost", AlertCondition.ABOVE, 1.0))
        assert manager.evaluate(1.0) == []

    def test_empty_window_is_quiet(self):
        bank = bank_with(samples=[(100.0, 5.0)])
        manager = AlertManager(bank)
        manager.add_rule(AlertRule("r", "feeder", AlertCondition.ABOVE, 1.0))
        assert manager.evaluate(1.0) == []  # no samples in [0, 1]

    def test_duplicate_rule_rejected(self):
        manager = AlertManager(SeriesBank())
        manager.add_rule(AlertRule("r", "s", AlertCondition.ABOVE, 1.0))
        with pytest.raises(ConfigError):
            manager.add_rule(AlertRule("r", "s", AlertCondition.BELOW, 1.0))

    def test_alert_on_real_aggregator_feeder(self):
        scenario = build_paper_testbed(seed=5)
        scenario.run_until(15.0)
        agg1 = scenario.aggregator("agg1")
        manager = AlertManager(agg1.monitoring)
        manager.add_rule(
            AlertRule(
                "feeder-overload", "feeder", AlertCondition.ABOVE,
                threshold=10.0, window_s=2.0,  # trivially breached
            )
        )
        fired = manager.evaluate(scenario.simulator.now)
        assert fired and fired[0].rule == "feeder-overload"
