"""Tests for the discrete-event kernel (clock, events, run loop)."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim import Event, EventQueue, SimClock, Simulator


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            SimClock(-1.0)

    def test_advance_forward(self):
        clock = SimClock()
        clock.advance_to(3.5)
        assert clock.now == 3.5

    def test_advance_to_same_time_allowed(self):
        clock = SimClock()
        clock.advance_to(1.0)
        clock.advance_to(1.0)
        assert clock.now == 1.0

    def test_backwards_rejected(self):
        clock = SimClock()
        clock.advance_to(2.0)
        with pytest.raises(SimulationError):
            clock.advance_to(1.0)


class TestEventQueue:
    def test_pop_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, lambda: order.append("b"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(3.0, lambda: order.append("c"))
        while (event := queue.pop()) is not None:
            event.callback()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self):
        queue = EventQueue()
        events = [queue.push(1.0, lambda: None, label=str(i)) for i in range(5)]
        popped = [queue.pop().label for _ in range(5)]
        assert popped == [e.label for e in events]

    def test_priority_breaks_ties(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None, priority=5, label="low")
        queue.push(1.0, lambda: None, priority=1, label="high")
        assert queue.pop().label == "high"

    def test_cancel_skips_event(self):
        queue = EventQueue()
        victim = queue.push(1.0, lambda: None, label="victim")
        queue.push(2.0, lambda: None, label="survivor")
        victim.cancel()
        assert queue.pop().label == "survivor"
        assert queue.pop() is None

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        victim = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        victim.cancel()
        assert queue.peek_time() == 2.0

    def test_peek_empty_is_none(self):
        assert EventQueue().peek_time() is None

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.push(1.0, lambda: None)
        assert queue and len(queue) == 1

    def test_non_callable_rejected(self):
        with pytest.raises(SchedulingError):
            EventQueue().push(1.0, "not callable")

    def test_clear(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.clear()
        assert queue.pop() is None


class TestSimulator:
    def test_run_until_executes_due_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(sim.now))
        sim.schedule(5.0, lambda: fired.append(sim.now))
        sim.run_until(3.0)
        assert fired == [1.0]
        assert sim.now == 3.0

    def test_run_until_includes_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append(True))
        sim.run_until(3.0)
        assert fired == [True]

    def test_run_drains_queue(self):
        sim = Simulator()
        fired = []
        for t in (0.5, 1.5, 2.5):
            sim.schedule(t, lambda t=t: fired.append(t))
        sim.run()
        assert fired == [0.5, 1.5, 2.5]

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_until(2.0)
        with pytest.raises(SchedulingError):
            sim.schedule(1.5, lambda: None)

    def test_nan_and_inf_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.schedule(float("nan"), lambda: None)
        with pytest.raises(SchedulingError):
            sim.schedule(float("inf"), lambda: None)

    def test_call_later_relative(self):
        sim = Simulator()
        times = []
        sim.schedule(1.0, lambda: sim.call_later(0.5, lambda: times.append(sim.now)))
        sim.run()
        assert times == [1.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(SchedulingError):
            Simulator().call_later(-0.1, lambda: None)

    def test_events_cascade(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.call_later(1.0, lambda: chain(n + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_run_until_backwards_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(4.0)

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.call_later(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run_until(1.0, max_events=100)

    def test_events_executed_counter(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule(float(t), lambda: None)
        sim.run()
        assert sim.events_executed == 5


class TestPeriodicTask:
    def test_fires_at_interval(self):
        sim = Simulator()
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now))
        sim.run_until(3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_first_at_override(self):
        sim = Simulator()
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now), first_at=0.25)
        sim.run_until(2.5)
        assert ticks == [0.25, 1.25, 2.25]

    def test_stop_halts_firing(self):
        sim = Simulator()
        ticks = []
        task = sim.every(1.0, lambda: ticks.append(sim.now))
        sim.schedule(2.5, task.stop)
        sim.run_until(10.0)
        assert ticks == [1.0, 2.0]
        assert task.stopped

    def test_stop_is_idempotent(self):
        sim = Simulator()
        task = sim.every(1.0, lambda: None)
        task.stop()
        task.stop()

    def test_reschedule_changes_interval(self):
        # Re-arms the pending fire: at 1.5 the queued 2.0 tick is
        # cancelled and the new cadence starts from the reschedule.
        sim = Simulator()
        ticks = []
        task = sim.every(1.0, lambda: ticks.append(sim.now))
        sim.schedule(1.5, lambda: task.reschedule(2.0))
        sim.run_until(6.0)
        assert ticks == [1.0, 3.5, 5.5]

    def test_bad_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.every(0.0, lambda: None)
        task = sim.every(1.0, lambda: None)
        with pytest.raises(SchedulingError):
            task.reschedule(-1.0)

    def test_double_start_rejected(self):
        # Regression: a second start used to arm a second concurrent
        # firing chain, doubling the callback rate forever.
        sim = Simulator()
        ticks = []
        task = sim.every(1.0, lambda: ticks.append(sim.now))
        with pytest.raises(SchedulingError):
            task.start(0.5)
        sim.run_until(3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_start_after_stop_rejected(self):
        sim = Simulator()
        task = sim.every(1.0, lambda: None)
        task.stop()
        with pytest.raises(SchedulingError):
            task.start(2.0)

    def test_reschedule_from_inside_callback(self):
        # A reschedule during _fire must not double-arm: the interval
        # change applies to the re-arm the firing chain already does.
        sim = Simulator()
        ticks = []
        task = None

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 2:
                task.reschedule(2.0)

        task = sim.every(1.0, tick)
        sim.run_until(6.5)
        assert ticks == [1.0, 2.0, 4.0, 6.0]

    def test_reschedule_shortens_pending_gap(self):
        sim = Simulator()
        ticks = []
        task = sim.every(10.0, lambda: ticks.append(sim.now))
        sim.schedule(1.0, lambda: task.reschedule(0.5))
        sim.run_until(2.1)
        assert ticks == [1.5, 2.0]

    def test_reschedule_while_stopped_keeps_silent(self):
        sim = Simulator()
        ticks = []
        task = sim.every(1.0, lambda: ticks.append(sim.now))
        task.stop()
        task.reschedule(0.5)
        sim.run_until(3.0)
        assert ticks == []

    def test_reschedule_outside_firing_rearms_from_now(self):
        # Regression guard: a reschedule while an event is pending (not
        # during _fire) must cancel the pending event and re-arm at
        # now + interval — even when the new interval is *longer*, the
        # old firing time is discarded.
        sim = Simulator()
        ticks = []
        task = sim.every(2.0, lambda: ticks.append(sim.now))
        sim.schedule(1.0, lambda: task.reschedule(5.0))
        sim.run_until(10.0)
        # Pending firing at 2.0 was discarded; re-armed at 1.0 + 5.0.
        assert ticks == [6.0]


class TestSameInstantBatch:
    """Same-instant events run through one clock write in strict
    (time, priority, sequence) order — including events scheduled or
    cancelled *during* the batch."""

    def test_priority_then_fifo_within_instant(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("p5-first"), priority=5)
        sim.schedule(1.0, lambda: order.append("p0"), priority=0)
        sim.schedule(1.0, lambda: order.append("p5-second"), priority=5)
        sim.run_until(1.0)
        assert order == ["p0", "p5-first", "p5-second"]

    def test_event_scheduled_during_batch_joins_it_in_order(self):
        # A callback schedules another event at the *same* instant with
        # a lower priority number than an already-queued peer: it must
        # preempt that peer, exactly as if it had been queued up front.
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(1.0, lambda: order.append("injected"), priority=1)

        sim.schedule(1.0, first, priority=0)
        sim.schedule(1.0, lambda: order.append("late"), priority=5)
        sim.run_until(1.0)
        assert order == ["first", "injected", "late"]

    def test_cancel_during_batch_is_honoured(self):
        sim = Simulator()
        order = []
        victim = sim.schedule(1.0, lambda: order.append("victim"), priority=5)
        sim.schedule(1.0, lambda: victim.cancel(), priority=0)
        sim.schedule(1.0, lambda: order.append("survivor"), priority=9)
        sim.run_until(2.0)
        assert order == ["survivor"]

    def test_clock_is_stable_across_the_batch(self):
        sim = Simulator()
        seen = []
        for _ in range(5):
            sim.schedule(1.0, lambda: seen.append(sim.now))
        sim.run_until(3.0)
        assert seen == [1.0] * 5
        assert sim.now == 3.0

    def test_int_event_times_become_floats_on_the_clock(self):
        # The run loop assigns event times to the clock verbatim, so
        # schedule() must normalise int times (1 vs 1.0 would leak into
        # trace reprs and determinism digests).
        sim = Simulator()
        seen = []
        sim.schedule(1, lambda: seen.append(sim.now))
        sim.run_until(2.0)
        assert isinstance(seen[0], float)

    def test_events_executed_counts_whole_batch(self):
        sim = Simulator()
        for _ in range(7):
            sim.schedule(1.0, lambda: None)
        sim.run_until(1.0)
        assert sim.events_executed == 7
        sim.schedule(2.0, lambda: None)
        sim.run_until(2.0)
        assert sim.events_executed == 8


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        def run():
            sim = Simulator(seed=42)
            values = []
            rng = sim.rng.stream("x")

            def tick():
                values.append(float(rng.random()))

            sim.every(0.1, tick)
            sim.run_until(1.0)
            return values

        assert run() == run()

    def test_new_stream_does_not_shift_existing(self):
        sim1 = Simulator(seed=7)
        a1 = sim1.rng.stream("a").random(5).tolist()

        sim2 = Simulator(seed=7)
        sim2.rng.stream("b")  # extra consumer
        a2 = sim2.rng.stream("a").random(5).tolist()
        assert a1 == a2
