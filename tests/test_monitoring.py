"""Tests for time series, dashboards and exports."""

import json

import pytest

from repro.errors import ConfigError
from repro.monitoring import (
    SeriesBank,
    TimeSeries,
    render_dashboard,
    render_series,
    series_to_csv,
    series_to_json,
)
from repro.monitoring.dashboards import sparkline
from repro.monitoring.export import export_bank


def filled_series(n=10, step=1.0):
    series = TimeSeries("test", "mA")
    for i in range(n):
        series.append(i * step, float(i))
    return series


class TestTimeSeries:
    def test_append_and_len(self):
        assert len(filled_series(5)) == 5

    def test_times_must_be_non_decreasing(self):
        series = TimeSeries("x")
        series.append(1.0, 1.0)
        series.append(1.0, 2.0)  # equal is fine
        with pytest.raises(ConfigError):
            series.append(0.5, 3.0)

    def test_window_half_open(self):
        series = filled_series(10)
        times, values = series.window(2.0, 5.0)
        assert times == [2.0, 3.0, 4.0]
        assert values == [2.0, 3.0, 4.0]

    def test_mean_full_and_windowed(self):
        series = filled_series(10)
        assert series.mean() == pytest.approx(4.5)
        assert series.mean(0.0, 2.0) == pytest.approx(0.5)

    def test_mean_empty_is_zero(self):
        assert TimeSeries("x").mean() == 0.0

    def test_integrate_trapezoid(self):
        series = TimeSeries("x")
        for t in range(5):
            series.append(float(t), 2.0)
        assert series.integrate(0.0, 4.5) == pytest.approx(8.0)

    def test_resample_buckets(self):
        series = filled_series(10, step=0.5)  # t in [0, 4.5]
        resampled = series.resample(1.0)
        assert len(resampled) == 5
        assert resampled.values[0] == pytest.approx(0.5)

    def test_last_value(self):
        assert filled_series(3).last_value() == 2.0
        assert TimeSeries("x").last_value() is None

    def test_resample_edges_do_not_drift(self):
        # Pre-fix the loop accumulated `edge += bucket_s`, so with a
        # 0.1 s bucket over 50 samples float error pushed samples into
        # neighbouring buckets and dropped the final one entirely.
        series = TimeSeries("drift")
        for i in range(50):
            series.append(i * 0.1, float(i))
        resampled = series.resample(0.1)
        assert len(resampled) == 50
        assert resampled.values == [float(i) for i in range(50)]

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            TimeSeries("")
        with pytest.raises(ConfigError):
            filled_series().resample(0.0)


class TestSeriesBank:
    def test_get_or_create(self):
        bank = SeriesBank()
        a = bank.series("a", "mA")
        assert bank.series("a") is a
        assert "a" in bank

    def test_record_appends(self):
        bank = SeriesBank()
        bank.record("x", 1.0, 5.0)
        bank.record("x", 2.0, 6.0)
        assert len(bank["x"]) == 2

    def test_unknown_lookup_rejected(self):
        with pytest.raises(ConfigError):
            SeriesBank()["missing"]

    def test_names_in_creation_order(self):
        bank = SeriesBank()
        bank.record("b", 0.0, 0.0)
        bank.record("a", 0.0, 0.0)
        assert bank.names == ["b", "a"]

    def test_conflicting_unit_rejected(self):
        bank = SeriesBank()
        bank.series("load", "mA")
        with pytest.raises(ConfigError):
            bank.series("load", "mWh")
        with pytest.raises(ConfigError):
            bank.record("load", 0.0, 1.0, unit="V")

    def test_empty_unit_is_wildcard_and_adopts(self):
        bank = SeriesBank()
        bank.record("load", 0.0, 1.0)  # created unitless
        bank.record("load", 1.0, 2.0, unit="mA")  # adopts the unit
        assert bank["load"].unit == "mA"
        bank.record("load", 2.0, 3.0)  # wildcard still matches
        with pytest.raises(ConfigError):
            bank.record("load", 3.0, 4.0, unit="mW")


class TestDashboards:
    def test_sparkline_length_and_chars(self):
        line = sparkline([float(i) for i in range(100)], width=40)
        assert len(line) == 40

    def test_sparkline_flat_series(self):
        assert set(sparkline([5.0] * 10)) == {"▁"}

    def test_sparkline_empty(self):
        assert sparkline([]) == "(empty)"

    def test_render_series_includes_stats(self):
        text = render_series(filled_series())
        assert "test" in text and "mean" in text and "mA" in text

    def test_render_dashboard(self):
        bank = SeriesBank()
        bank.record("one", 0.0, 1.0)
        bank.record("two", 0.0, 2.0)
        text = render_dashboard(bank)
        assert "one" in text and "two" in text

    def test_render_empty_dashboard(self):
        assert "no series" in render_dashboard(SeriesBank())


class TestExport:
    def test_csv_has_header_and_rows(self):
        text = series_to_csv(filled_series(3))
        lines = text.strip().splitlines()
        assert lines[0] == "time_s,value_mA"
        assert len(lines) == 4

    def test_json_roundtrip(self):
        data = json.loads(series_to_json(filled_series(3)))
        assert data["name"] == "test"
        assert data["values"] == [0.0, 1.0, 2.0]

    def test_export_bank_writes_files(self, tmp_path):
        bank = SeriesBank()
        bank.record("received:device1", 0.0, 1.0)
        paths = export_bank(bank, tmp_path)
        assert len(paths) == 1
        assert paths[0].exists()
        assert "received_device1" in paths[0].name

    def test_export_bank_dedupes_sanitized_collisions(self, tmp_path):
        # "a/b" and "a:b" both sanitize to "a_b" — pre-fix the second
        # export silently overwrote the first.
        bank = SeriesBank()
        bank.record("a/b", 0.0, 1.0)
        bank.record("a:b", 0.0, 2.0)
        paths = export_bank(bank, tmp_path)
        assert len(paths) == 2
        assert len(set(paths)) == 2
        assert all(p.exists() for p in paths)
        contents = {p.read_text() for p in paths}
        assert len(contents) == 2  # both series' data survived

    def test_export_bank_suffix_never_shadows_literal_name(self, tmp_path):
        # A series literally named like the dedupe suffix must not be
        # overwritten by a deduped neighbour.
        bank = SeriesBank()
        bank.record("a_b.1", 0.0, 0.0)
        bank.record("a/b", 0.0, 1.0)
        bank.record("a:b", 0.0, 2.0)
        paths = export_bank(bank, tmp_path)
        assert len(set(paths)) == 3
