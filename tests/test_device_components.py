"""Tests for device storage, metering, firmware and the app layer."""

import numpy as np
import pytest

from repro.billing.tariff import FlatTariff, TimeOfUseTariff
from repro.device import EnergyMeter, Firmware, LocalStore
from repro.device.app import (
    BillingAgent,
    DemandPredictor,
    ScheduleOptimizer,
    TariffWindow,
)
from repro.device.metering import Measurement
from repro.errors import ConfigError, StorageError
from repro.hw.ina219 import Ina219, Ina219Config
from repro.ids import AggregatorId, DeviceId, NetworkAddress
from repro.protocol.messages import ConsumptionReport
from repro.sim import Simulator


def make_report(seq, buffered=False):
    return ConsumptionReport(
        device_id=DeviceId("d1"),
        master=NetworkAddress(AggregatorId("agg1"), 1),
        temporary=None,
        sequence=seq,
        measured_at=float(seq) * 0.1,
        interval_s=0.1,
        current_ma=50.0,
        voltage_v=3.3,
        energy_mwh=0.005,
        buffered=buffered,
    )


def make_measurement(at=1.0, current=100.0):
    return Measurement(
        measured_at=at,
        interval_s=0.1,
        current_ma=current,
        true_current_ma=current,
        voltage_v=3.3,
        energy_mwh=current * 3.3 * 0.1 / 3600.0,
    )


class TestLocalStore:
    def test_fifo_order(self):
        store = LocalStore()
        for i in range(5):
            store.store(make_report(i))
        drained = store.drain()
        assert [r.sequence for r in drained] == [0, 1, 2, 3, 4]

    def test_drain_marks_buffered(self):
        store = LocalStore()
        store.store(make_report(0))
        assert store.drain()[0].buffered is True

    def test_drain_limit(self):
        store = LocalStore()
        for i in range(10):
            store.store(make_report(i))
        batch = store.drain(3)
        assert len(batch) == 3
        assert store.pending == 7

    def test_capacity_evicts_oldest(self):
        store = LocalStore(capacity=3)
        for i in range(5):
            store.store(make_report(i))
        assert store.pending == 3
        assert store.dropped_total == 2
        assert [r.sequence for r in store.drain()] == [2, 3, 4]

    def test_counters(self):
        store = LocalStore()
        for i in range(4):
            store.store(make_report(i))
        store.drain(2)
        assert store.stored_total == 4
        assert store.pending == 2

    def test_requeue_front(self):
        store = LocalStore()
        for i in range(4):
            store.store(make_report(i))
        batch = store.drain(2)
        store.requeue_front(batch)
        assert [r.sequence for r in store.drain()] == [0, 1, 2, 3]

    def test_requeue_front_enforces_capacity(self):
        # Regression: requeueing used to grow the store past its bound,
        # silently defeating the memory-cap the capacity models.
        store = LocalStore(capacity=3)
        for i in range(3):
            store.store(make_report(i))
        batch = store.drain(2)  # sequences 0, 1
        store.store(make_report(3))
        store.store(make_report(4))  # store now holds 2, 3, 4 (full)
        store.requeue_front(batch)
        assert store.pending == 3
        # Oldest overall are evicted: the requeued 0 and 1 go first.
        assert [r.sequence for r in store.drain()] == [2, 3, 4]
        assert store.dropped_total == 2

    def test_peek_oldest(self):
        store = LocalStore()
        assert store.peek_oldest() is None
        store.store(make_report(7))
        assert store.peek_oldest().sequence == 7
        assert store.pending == 1

    def test_invalid_params_rejected(self):
        with pytest.raises(StorageError):
            LocalStore(capacity=0)
        with pytest.raises(StorageError):
            LocalStore().drain(0)


class TestEnergyMeter:
    def make_meter(self, current=100.0, **sensor_overrides):
        sensor = Ina219(Ina219Config(**sensor_overrides), np.random.default_rng(0))
        return EnergyMeter(sensor, lambda t: current, 3.3)

    def test_sample_fields(self):
        meter = self.make_meter()
        m = meter.sample(1.0, 0.1)
        assert m.measured_at == 1.0
        assert m.interval_s == 0.1
        assert m.true_current_ma == 100.0
        assert abs(m.current_ma - 100.0) < 2.0

    def test_energy_accumulates(self):
        meter = self.make_meter()
        for i in range(10):
            meter.sample(i * 0.1, 0.1)
        expected = 100.0 * 3.3 * 1.0 / 3600.0
        assert meter.total_true_energy_mwh == pytest.approx(expected)
        assert meter.total_energy_mwh == pytest.approx(expected, rel=0.05)

    def test_negative_reading_clamped(self):
        meter = self.make_meter(current=0.0, offset_max_ma=0.5, noise_std_ma=0.5)
        for i in range(50):
            m = meter.sample(float(i), 0.1)
            assert m.current_ma >= 0.0
            assert m.energy_mwh >= 0.0

    def test_invalid_voltage_rejected(self):
        sensor = Ina219(Ina219Config(), np.random.default_rng(0))
        with pytest.raises(Exception):
            EnergyMeter(sensor, lambda t: 1.0, 0.0)


class TestFirmware:
    def test_sampling_cadence(self):
        sim = Simulator()
        sensor = Ina219(Ina219Config(), sim.rng.stream("s"))
        meter = EnergyMeter(sensor, lambda t: 50.0, 3.3)
        seen = []
        firmware = Firmware(sim, meter, seen.append, t_measure_s=0.1)
        firmware.start()
        sim.run_until(1.0)
        assert len(seen) == 10
        assert firmware.samples_taken == 10

    def test_stop_halts_sampling(self):
        sim = Simulator()
        sensor = Ina219(Ina219Config(), sim.rng.stream("s"))
        meter = EnergyMeter(sensor, lambda t: 50.0, 3.3)
        seen = []
        firmware = Firmware(sim, meter, seen.append)
        firmware.start()
        sim.schedule(0.55, firmware.stop)
        sim.run_until(2.0)
        assert len(seen) == 5
        assert not firmware.running

    def test_start_idempotent(self):
        sim = Simulator()
        sensor = Ina219(Ina219Config(), sim.rng.stream("s"))
        meter = EnergyMeter(sensor, lambda t: 50.0, 3.3)
        seen = []
        firmware = Firmware(sim, meter, seen.append)
        firmware.start()
        firmware.start()
        sim.run_until(0.35)
        assert len(seen) == 3

    def test_invalid_interval_rejected(self):
        sim = Simulator()
        sensor = Ina219(Ina219Config(), sim.rng.stream("s"))
        meter = EnergyMeter(sensor, lambda t: 1.0, 3.3)
        with pytest.raises(ConfigError):
            Firmware(sim, meter, lambda m: None, t_measure_s=0.0)


class TestBillingAgent:
    def test_accounts_energy_and_cost(self):
        agent = BillingAgent(FlatTariff(rate_per_mwh=2.0))
        cost = agent.account(make_measurement(current=100.0))
        assert cost == pytest.approx(100 * 3.3 * 0.1 / 3600 * 2.0)
        assert agent.windows == 1

    def test_time_of_use_pricing(self):
        tariff = TimeOfUseTariff(
            period_s=100.0, peak_start_s=0.0, peak_end_s=50.0,
            peak_rate=10.0, offpeak_rate=1.0,
        )
        agent = BillingAgent(tariff)
        peak_cost = agent.account(make_measurement(at=10.0))
        offpeak_cost = agent.account(make_measurement(at=60.0))
        assert peak_cost == pytest.approx(10 * offpeak_cost)

    def test_monthly_projection(self):
        agent = BillingAgent(FlatTariff(1.0))
        agent.account(make_measurement())
        month = agent.estimate_monthly_cost(0.1, elapsed_s=3600.0)
        assert month == pytest.approx(agent.cost * 720)

    def test_invalid_inputs_rejected(self):
        agent = BillingAgent(FlatTariff(1.0))
        bad = Measurement(1.0, 0.1, -1.0, -1.0, 3.3, -0.1)
        with pytest.raises(Exception):
            agent.account(bad)
        with pytest.raises(Exception):
            agent.estimate_monthly_cost(0.1, 0.0)


class TestDemandPredictor:
    def test_constant_series_predicted_exactly(self):
        predictor = DemandPredictor()
        for _ in range(20):
            predictor.observe(5.0)
        assert predictor.predict() == pytest.approx(5.0, rel=0.01)

    def test_trend_followed(self):
        predictor = DemandPredictor(alpha=0.5, beta=0.3)
        for i in range(50):
            predictor.observe(float(i))
        assert predictor.predict(1) > 45.0

    def test_prediction_never_negative(self):
        predictor = DemandPredictor(alpha=0.9, beta=0.9)
        for value in (10.0, 1.0, 0.0, 0.0):
            predictor.observe(value)
        assert predictor.predict(10) >= 0.0

    def test_empty_predicts_zero(self):
        assert DemandPredictor().predict() == 0.0

    def test_error_tracking(self):
        predictor = DemandPredictor()
        for value in (1.0, 2.0, 1.0, 2.0, 1.0):
            predictor.observe(value)
        assert predictor.mean_abs_error > 0.0

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigError):
            DemandPredictor(alpha=0.0)
        with pytest.raises(ConfigError):
            DemandPredictor(beta=1.5)
        with pytest.raises(ConfigError):
            DemandPredictor().predict(0)
        with pytest.raises(ConfigError):
            DemandPredictor().observe(-1.0)


class TestScheduleOptimizer:
    def windows(self):
        return [
            TariffWindow(0.0, 100.0, 5.0),
            TariffWindow(100.0, 200.0, 1.0),
            TariffWindow(200.0, 300.0, 3.0),
        ]

    def test_cheapest_window_first(self):
        optimizer = ScheduleOptimizer(self.windows())
        slots = optimizer.plan(required_s=100.0)
        assert len(slots) == 1
        assert slots[0].price_per_mwh == 1.0

    def test_spills_to_next_cheapest(self):
        optimizer = ScheduleOptimizer(self.windows())
        slots = optimizer.plan(required_s=150.0)
        prices = sorted(s.price_per_mwh for s in slots)
        assert prices == [1.0, 3.0]

    def test_deadline_restricts_windows(self):
        optimizer = ScheduleOptimizer(self.windows())
        slots = optimizer.plan(required_s=50.0, deadline_s=100.0)
        assert all(s.end_s <= 100.0 for s in slots)
        assert slots[0].price_per_mwh == 5.0

    def test_infeasible_raises(self):
        optimizer = ScheduleOptimizer(self.windows())
        with pytest.raises(ConfigError):
            optimizer.plan(required_s=301.0)
        with pytest.raises(ConfigError):
            optimizer.plan(required_s=200.0, deadline_s=150.0)

    def test_cost_computation(self):
        optimizer = ScheduleOptimizer(self.windows())
        slots = optimizer.plan(required_s=100.0)
        # 1000 mW for 100 s in the 1.0-price window.
        cost = optimizer.plan_cost(slots, power_mw=1000.0)
        assert cost == pytest.approx(1000.0 * 100.0 / 3600.0 * 1.0)

    def test_overlapping_windows_rejected(self):
        with pytest.raises(ConfigError):
            ScheduleOptimizer(
                [TariffWindow(0.0, 10.0, 1.0), TariffWindow(5.0, 15.0, 1.0)]
            )

    def test_slots_returned_in_time_order(self):
        optimizer = ScheduleOptimizer(self.windows())
        slots = optimizer.plan(required_s=250.0)
        starts = [s.start_s for s in slots]
        assert starts == sorted(starts)
