"""Property-based safety tests for both consensus implementations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain import (
    Blockchain,
    NetworkedPoaConsensus,
    NetworkedValidator,
    PoaConsensus,
    Validator,
)
from repro.ids import AggregatorId
from repro.net import BackhaulLink, BackhaulMesh
from repro.sim import Simulator

RECORDS = [{"device": "d", "device_uid": "u", "sequence": 0,
            "measured_at": 0.0, "energy_mwh": 0.1}]


class TestSynchronousConsensusSafety:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=12))
    def test_commit_iff_strict_quorum(self, votes):
        """For any validator honesty pattern, a block commits exactly
        when accepts strictly exceed 2/3 of the committee."""
        validators = [
            Validator(f"v{i}", check=(lambda accept: (lambda r: accept))(accept))
            for i, accept in enumerate(votes)
        ]
        chain = Blockchain()
        consensus = PoaConsensus(validators, chain)
        committed, cast = consensus.propose(0.0, RECORDS)
        accepts = sum(v.accept for v in cast)
        assert accepts == sum(votes)
        assert committed == (accepts > (2.0 / 3.0) * len(votes))
        assert chain.height == (1 if committed else 0)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=10), st.integers(min_value=0, max_value=20))
    def test_chain_height_equals_committed_rounds(self, n_validators, n_rounds):
        validators = [Validator(f"v{i}") for i in range(n_validators)]
        chain = Blockchain()
        consensus = PoaConsensus(validators, chain)
        committed_count = 0
        for r in range(n_rounds):
            committed, _ = consensus.propose(float(r), RECORDS)
            committed_count += committed
        assert chain.height == committed_count
        chain.validate()


class TestNetworkedConsensusSafety:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.booleans(), min_size=2, max_size=7))
    def test_networked_commit_iff_quorum(self, votes):
        sim = Simulator(seed=0)
        mesh = BackhaulMesh(sim)
        chain = Blockchain(authorized=set())
        validators = [
            NetworkedValidator(
                sim, AggregatorId(f"v{i}"), mesh,
                check=(lambda accept: (lambda r: accept))(accept),
            )
            for i, accept in enumerate(votes)
        ]
        for i, a in enumerate(validators):
            for b in validators[i + 1:]:
                mesh.connect(BackhaulLink(a.node_id, b.node_id, latency_s=0.001))
        consensus = NetworkedPoaConsensus(sim, validators, chain)
        outcomes = []
        consensus.propose(RECORDS, lambda ok, lat: outcomes.append(ok))
        sim.run()
        accepts = sum(votes)
        expected = accepts > (2.0 / 3.0) * len(votes)
        assert outcomes == [expected]
        assert chain.height == (1 if expected else 0)
