"""Tests for networked consensus and inclusion receipts."""

import pytest

from repro.chain import (
    Block,
    Blockchain,
    InMemoryBlockStore,
    NetworkedPoaConsensus,
    NetworkedValidator,
    find_and_issue,
    issue_receipt,
)
from repro.errors import ChainError, ConsensusError
from repro.ids import AggregatorId
from repro.net import BackhaulLink, BackhaulMesh
from repro.sim import Simulator


def make_committee(n=4, check=None, link_latency=0.001):
    sim = Simulator(seed=0)
    mesh = BackhaulMesh(sim)
    chain = Blockchain(authorized=set())
    validators = [
        NetworkedValidator(sim, AggregatorId(f"v{i}"), mesh, check=check)
        for i in range(n)
    ]
    for i, a in enumerate(validators):
        for b in validators[i + 1:]:
            mesh.connect(BackhaulLink(a.node_id, b.node_id, latency_s=link_latency))
    consensus = NetworkedPoaConsensus(sim, validators, chain)
    return sim, chain, consensus


RECORDS = [{"device": "d1", "device_uid": "u1", "sequence": 0,
            "measured_at": 0.0, "energy_mwh": 0.5}]


class TestNetworkedConsensus:
    def test_honest_round_commits(self):
        sim, chain, consensus = make_committee(4)
        outcomes = []
        consensus.propose(RECORDS, lambda ok, lat: outcomes.append((ok, lat)))
        sim.run()
        assert outcomes and outcomes[0][0] is True
        assert chain.height == 1

    def test_commit_latency_reflects_network(self):
        # Latency >= proposal hop + processing + vote hop.
        sim, _, consensus = make_committee(4, link_latency=0.005)
        latencies = []
        consensus.propose(RECORDS, lambda ok, lat: latencies.append(lat))
        sim.run()
        assert latencies[0] >= 0.005 + 0.002 + 0.005

    def test_latency_smaller_on_faster_links(self):
        def run(link):
            sim, _, consensus = make_committee(4, link_latency=link)
            latencies = []
            consensus.propose(RECORDS, lambda ok, lat: latencies.append(lat))
            sim.run()
            return latencies[0]

        assert run(0.001) < run(0.010)

    def test_fraud_rejected_by_quorum(self):
        def plausible(records):
            return all(r["energy_mwh"] < 100 for r in records)

        sim, chain, consensus = make_committee(5, check=plausible)
        outcomes = []
        forged = [dict(RECORDS[0], energy_mwh=1e9)]
        consensus.propose(forged, lambda ok, lat: outcomes.append(ok))
        sim.run()
        assert outcomes == [False]
        assert chain.height == 0

    def test_proposer_rotates_across_rounds(self):
        sim, chain, consensus = make_committee(3)
        done = []
        consensus.propose(RECORDS, lambda ok, lat: done.append(ok))
        sim.run()
        consensus.propose(RECORDS, lambda ok, lat: done.append(ok))
        sim.run()
        creators = [b.header.aggregator for b in chain]
        assert creators == ["v0", "v1"]

    def test_rejection_decided_early(self):
        # With 3 validators and quorum > 2/3, 1 reject is decisive.
        sim, chain, consensus = make_committee(3, check=lambda r: False)
        outcomes = []
        consensus.propose(RECORDS, lambda ok, lat: outcomes.append(ok))
        sim.run()
        assert outcomes == [False]

    def test_empty_committee_rejected(self):
        sim = Simulator()
        with pytest.raises(ConsensusError):
            NetworkedPoaConsensus(sim, [], Blockchain())


class TestInclusionReceipts:
    def build_chain(self):
        chain = Blockchain()
        for b in range(3):
            chain.append(
                "agg1", float(b),
                [{"device": f"d{i}", "device_uid": f"u{i}", "sequence": b,
                  "measured_at": float(b), "energy_mwh": 0.1 * i}
                 for i in range(5)],
            )
        return chain

    def test_issue_and_verify(self):
        chain = self.build_chain()
        receipt = issue_receipt(chain, 1, 3)
        assert receipt.verify()
        assert receipt.verify(chain)
        assert receipt.record["device"] == "d3"

    def test_find_by_device_and_sequence(self):
        chain = self.build_chain()
        receipt = find_and_issue(chain, "u2", 1)
        assert receipt.block_height == 1
        assert receipt.verify(chain)

    def test_find_missing_raises(self):
        chain = self.build_chain()
        with pytest.raises(ChainError):
            find_and_issue(chain, "ghost", 0)

    def test_forged_record_fails_verification(self):
        chain = self.build_chain()
        receipt = issue_receipt(chain, 1, 3)
        forged = type(receipt)(
            block_height=receipt.block_height,
            block_hash=receipt.block_hash,
            merkle_root=receipt.merkle_root,
            leaf_count=receipt.leaf_count,
            record=dict(receipt.record, energy_mwh=0.0),
            proof=receipt.proof,
        )
        assert not forged.verify()

    def test_receipt_against_rewritten_chain_fails(self):
        store = InMemoryBlockStore()
        chain = Blockchain(store)
        for b in range(3):
            chain.append(
                "agg1", float(b),
                [{"device": "d0", "device_uid": "u0", "sequence": b,
                  "measured_at": float(b), "energy_mwh": 1.0}],
            )
        receipt = issue_receipt(chain, 1, 0)
        # Attacker rewrites block 1 entirely (including its hash).
        forged_block = Block.create(
            height=1,
            previous_hash=chain.get(0).block_hash,
            aggregator="agg1",
            timestamp=1.0,
            records=[{"device": "d0", "device_uid": "u0", "sequence": 1,
                      "measured_at": 1.0, "energy_mwh": 0.0}],
        )
        store.tamper(1, forged_block)
        # Standalone proof still checks out (it is self-consistent)...
        assert receipt.verify()
        # ...but binding it to the live chain exposes the rewrite.
        assert not receipt.verify(chain)

    def test_out_of_range_issue_rejected(self):
        chain = self.build_chain()
        with pytest.raises(ChainError):
            issue_receipt(chain, 0, 99)
        with pytest.raises(ChainError):
            issue_receipt(chain, 99, 0)

    def test_receipt_bounds_checked_against_chain(self):
        chain = self.build_chain()
        receipt = issue_receipt(chain, 2, 0)
        shorter = Blockchain()
        assert not receipt.verify(shorter)
