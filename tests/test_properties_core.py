"""Property-based tests for kernel, TDMA, storage, codec and FSM invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.storage import LocalStore
from repro.ids import AggregatorId, DeviceId, NetworkAddress
from repro.net.tdma import TdmaSchedule
from repro.protocol.codec import decode_message, encode_message
from repro.protocol.device_fsm import DeviceFsm, DevicePhase
from repro.protocol.messages import (
    ConsumptionReport,
    Nack,
    NackReason,
    RegistrationResponse,
)
from repro.sim import Simulator

MASTER = NetworkAddress(AggregatorId("agg1"), 1)
TEMP = NetworkAddress(AggregatorId("agg2"), 2)

reports = st.builds(
    ConsumptionReport,
    device_id=st.just(DeviceId("d1")),
    master=st.one_of(st.none(), st.just(MASTER)),
    temporary=st.one_of(st.none(), st.just(TEMP)),
    sequence=st.integers(min_value=0, max_value=2**31),
    measured_at=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    interval_s=st.floats(min_value=1e-3, max_value=10.0, allow_nan=False),
    current_ma=st.floats(min_value=0, max_value=400.0, allow_nan=False),
    voltage_v=st.floats(min_value=0.1, max_value=240.0, allow_nan=False),
    energy_mwh=st.floats(min_value=0, max_value=1e3, allow_nan=False),
    buffered=st.booleans(),
)


class TestKernelProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), max_size=40))
    def test_events_execute_in_time_order(self, times):
        sim = Simulator()
        executed = []
        for t in times:
            sim.schedule(t, lambda t=t: executed.append(t))
        sim.run()
        assert executed == sorted(executed)
        assert len(executed) == len(times)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_periodic_tasks_fire_expected_counts(self, tasks):
        sim = Simulator()
        counters = [0] * len(tasks)
        for i, (interval, _) in enumerate(tasks):
            def bump(i=i):
                counters[i] += 1
            sim.every(interval, bump)
        horizon = 10.0
        sim.run_until(horizon)
        for (interval, _), count in zip(tasks, counters):
            expected = int(horizon / interval)
            assert abs(count - expected) <= 1


class TestTdmaProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=32), st.data())
    def test_no_two_devices_share_a_slot(self, slot_count, data):
        schedule = TdmaSchedule(slot_count=slot_count)
        n = data.draw(st.integers(min_value=0, max_value=slot_count))
        assigned = {}
        for i in range(n):
            assigned[i] = schedule.assign(DeviceId(f"d{i}"))
        assert len(set(assigned.values())) == len(assigned)
        assert all(0 <= s < slot_count for s in assigned.values())

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from(["assign", "release"]), max_size=60))
    def test_slot_accounting_never_negative(self, ops):
        schedule = TdmaSchedule(slot_count=8)
        alive = []
        counter = 0
        for op in ops:
            if op == "assign" and schedule.free_slots > 0:
                name = f"d{counter}"
                counter += 1
                schedule.assign(DeviceId(name))
                alive.append(name)
            elif op == "release" and alive:
                schedule.release(DeviceId(alive.pop()))
            assert 0 <= schedule.free_slots <= 8


class TestStorageProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1000), max_size=50),
           st.integers(min_value=1, max_value=20))
    def test_fifo_order_preserved_up_to_capacity(self, sequences, capacity):
        store = LocalStore(capacity=capacity)
        for seq in sequences:
            store.store(self._report(seq))
        drained = [r.sequence for r in store.drain()]
        expected = sequences[-capacity:] if len(sequences) > capacity else sequences
        assert drained == expected

    @staticmethod
    def _report(seq):
        return ConsumptionReport(
            device_id=DeviceId("d1"), master=None, temporary=None,
            sequence=seq, measured_at=float(seq), interval_s=0.1,
            current_ma=1.0, voltage_v=3.3, energy_mwh=0.0,
        )

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=60), st.integers(min_value=1, max_value=10))
    def test_conservation_stored_equals_pending_plus_drained_plus_dropped(self, n, cap):
        store = LocalStore(capacity=cap)
        for i in range(n):
            store.store(self._report(i))
        drained = len(store.drain(min(5, n) or None)) if n else 0
        assert store.stored_total == n
        assert store.pending + drained + store.dropped_total == n

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(min_value=1, max_value=10), min_size=1, max_size=30),
        st.integers(min_value=1, max_value=15),
    )
    def test_drain_requeue_roundtrip_preserves_order(self, batch_sizes, capacity):
        # drain(k) followed by requeue_front of the batch is an identity
        # on order (capacity permitting), and every drained record comes
        # back marked buffered.
        store = LocalStore(capacity=capacity)
        for seq in range(capacity):
            store.store(self._report(seq))
        before = [r.sequence for r in store.drain()]
        store.requeue_front([self._report(s) for s in before])
        for k in batch_sizes:
            batch = store.drain(k)
            assert all(r.buffered for r in batch)
            store.requeue_front(batch)
            assert store.pending <= store.capacity
        assert [r.sequence for r in store.drain()] == before

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.one_of(
                st.tuples(st.just("store"), st.integers(0, 3)),
                st.tuples(st.just("drain"), st.integers(1, 6)),
                st.tuples(st.just("requeue"), st.just(0)),
            ),
            max_size=40,
        ),
        st.integers(min_value=1, max_value=8),
    )
    def test_matches_reference_model_under_interleavings(self, ops, capacity):
        # Random store/drain/requeue interleavings against a reference
        # deque model: same contents, same drop count, bound respected.
        from collections import deque

        store = LocalStore(capacity=capacity)
        model: deque[int] = deque()
        model_dropped = 0
        held: list = []  # last drained batch, not yet requeued
        next_seq = 0
        for op, arg in ops:
            if op == "store":
                for _ in range(arg):
                    store.store(self._report(next_seq))
                    model.append(next_seq)
                    next_seq += 1
                    if len(model) > capacity:
                        model.popleft()
                        model_dropped += 1
            elif op == "drain":
                if store.is_empty:
                    continue
                held = store.drain(arg)
                assert all(r.buffered for r in held)
                assert [r.sequence for r in held] == [
                    model.popleft() for _ in range(min(arg, len(model)))
                ]
            else:  # requeue the held batch back
                store.requeue_front(held)
                model.extendleft(r.sequence for r in reversed(held))
                while len(model) > capacity:
                    model.popleft()
                    model_dropped += 1
                held = []
            assert store.pending <= store.capacity
            assert store.pending == len(model)
        assert [r.sequence for r in store.drain()] == list(model)
        assert store.dropped_total == model_dropped


class TestCodecProperties:
    @settings(max_examples=100, deadline=None)
    @given(reports)
    def test_report_roundtrip(self, report):
        assert decode_message(encode_message(report)) == report

    @settings(max_examples=50, deadline=None)
    @given(reports)
    def test_record_form_has_no_addresses(self, report):
        record = report.to_record()
        assert "master" not in record and "temporary" not in record
        assert record["device_uid"] == report.device_id.uid


fsm_inputs = st.lists(
    st.sampled_from(["join", "leave", "grant_master", "grant_temp", "nack", "remove"]),
    max_size=40,
)


class TestFsmProperties:
    @settings(max_examples=100, deadline=None)
    @given(fsm_inputs)
    def test_fsm_invariants_hold_under_any_input_sequence(self, inputs):
        """Drive the FSM with arbitrary (legal) input orderings.

        Invariants: roaming implies a home exists; reporting is possible
        only when a home exists; temporary address never survives
        leaving a network.
        """
        fsm = DeviceFsm(DeviceId("d1"))
        for action in inputs:
            try:
                if action == "join":
                    if fsm.phase is DevicePhase.IN_TRANSIT:
                        fsm.begin_join()
                        fsm.network_joined()
                elif action == "leave":
                    fsm.network_left()
                elif action == "grant_master":
                    if fsm.phase is DevicePhase.REGISTERING:
                        fsm.registration_response(
                            RegistrationResponse(DeviceId("d1"), MASTER, temporary=False)
                        )
                elif action == "grant_temp":
                    if fsm.phase is DevicePhase.REGISTERING and fsm.has_home:
                        fsm.registration_response(
                            RegistrationResponse(DeviceId("d1"), TEMP, temporary=True)
                        )
                elif action == "nack":
                    fsm.report_nacked(Nack(DeviceId("d1"), NackReason.NOT_A_MEMBER))
                elif action == "remove":
                    fsm.removed()
            finally:
                if fsm.is_roaming:
                    assert fsm.has_home
                if fsm.can_report:
                    assert fsm.phase is DevicePhase.REPORTING
                if fsm.phase is DevicePhase.IN_TRANSIT:
                    assert fsm.temporary is None
