"""Tests for RSSI-based reporting-aggregator selection (footnote 2)."""

import pytest

from repro.errors import ProtocolError
from repro.protocol.device_fsm import DevicePhase
from repro.workloads.scenarios import build_paper_testbed


class TestSelectNetwork:
    def test_nearest_ap_usually_wins(self):
        # With ~2 dB shadowing, 5 m vs 50 m is decided correctly.
        scenario = build_paper_testbed(seed=0, enter_devices=False)
        device = scenario.device("device1")
        agg1 = scenario.aggregator("agg1")
        agg2 = scenario.aggregator("agg2")
        wins = 0
        for _ in range(50):
            best, _, _ = device.select_network([(agg1, 5.0), (agg2, 50.0)])
            if best is agg1:
                wins += 1
        assert wins == 50

    def test_close_race_can_go_either_way(self):
        scenario = build_paper_testbed(seed=1, enter_devices=False)
        device = scenario.device("device1")
        agg1 = scenario.aggregator("agg1")
        agg2 = scenario.aggregator("agg2")
        choices = {
            device.select_network([(agg1, 10.0), (agg2, 10.5)])[0].aggregator_id.name
            for _ in range(60)
        }
        assert choices == {"agg1", "agg2"}  # shadowing flips close calls

    def test_returns_rssi_and_distance(self):
        scenario = build_paper_testbed(seed=2, enter_devices=False)
        device = scenario.device("device1")
        agg1 = scenario.aggregator("agg1")
        best, distance, rssi = device.select_network([(agg1, 5.0)])
        assert best is agg1
        assert distance == 5.0
        assert rssi < 0

    def test_empty_candidates_rejected(self):
        scenario = build_paper_testbed(seed=0, enter_devices=False)
        with pytest.raises(ProtocolError):
            scenario.device("device1").select_network([])


class TestEnterBestNetwork:
    def test_device_joins_selected_network(self):
        scenario = build_paper_testbed(seed=3, enter_devices=False)
        device = scenario.device("device1")
        agg1 = scenario.aggregator("agg1")
        agg2 = scenario.aggregator("agg2")
        scenario.simulator.schedule(
            0.0, lambda: device.enter_best_network([(agg1, 4.0), (agg2, 60.0)])
        )
        scenario.run_until(10.0)
        assert device.fsm.phase is DevicePhase.REPORTING
        assert device.fsm.master.aggregator.name == "agg1"
        assert agg1.registry.is_master_member(device.device_id)
