"""Tests for backhaul topology shapes and multi-hop roaming."""

import pytest

from repro.errors import ConfigError
from repro.ids import AggregatorId, DeviceId
from repro.workloads.scenarios import build_scaled_scenario


class TestTopologyShapes:
    def test_line_hop_latency_scales(self):
        scenario = build_scaled_scenario(
            4, 0, enter_devices=False, mesh_topology="line"
        )
        latency = scenario.mesh.latency_s(AggregatorId("net-0"), AggregatorId("net-3"))
        # Three 1 ms links plus two intermediate forwarding hops.
        assert latency == pytest.approx(0.003 + 2 * 0.0002)

    def test_star_routes_through_hub(self):
        scenario = build_scaled_scenario(
            4, 0, enter_devices=False, mesh_topology="star"
        )
        leaf_to_leaf = scenario.mesh.latency_s(
            AggregatorId("net-1"), AggregatorId("net-2")
        )
        assert leaf_to_leaf == pytest.approx(0.002 + 0.0002)

    def test_full_mesh_is_single_hop(self):
        scenario = build_scaled_scenario(
            4, 0, enter_devices=False, mesh_topology="full"
        )
        assert scenario.mesh.latency_s(
            AggregatorId("net-1"), AggregatorId("net-3")
        ) == pytest.approx(0.001)

    def test_invalid_topology_rejected(self):
        with pytest.raises(ConfigError):
            build_scaled_scenario(2, 0, mesh_topology="ring")


class TestMultiHopRoaming:
    @pytest.mark.parametrize("topology", ["line", "star"])
    def test_roaming_to_far_network_still_bills_home(self, topology):
        scenario = build_scaled_scenario(
            4, 1, seed=7, enter_devices=False, mesh_topology=topology
        )
        # dev-0-0's home is net-0; it roams to the far end net-3.
        scenario.enter_at("dev-0-0", "net-0", 0.0)
        device = scenario.device("dev-0-0")
        scenario.simulator.schedule(12.0, device.leave_network)
        scenario.simulator.schedule(
            16.0, lambda: device.enter_network(scenario.aggregator("net-3"))
        )
        scenario.run_until(35.0)
        assert device.fsm.is_roaming
        assert device.fsm.master.aggregator == AggregatorId("net-0")
        home = scenario.aggregator("net-0")
        assert home.liaison.stats.forwarded_received > 0
        roaming = [
            r
            for r in scenario.chain.records_for_device(DeviceId("dev-0-0").uid)
            if r.get("roaming")
        ]
        assert roaming
        assert all(r["network"] == "net-0" and r["host"] == "net-3" for r in roaming)

    def test_handshake_unaffected_by_hop_count(self):
        # The verify round-trip adds only milliseconds even over a line.
        durations = {}
        for topology in ("full", "line"):
            scenario = build_scaled_scenario(
                4, 1, seed=8, enter_devices=False, mesh_topology=topology
            )
            scenario.enter_at("dev-0-0", "net-0", 0.0)
            device = scenario.device("dev-0-0")
            scenario.simulator.schedule(12.0, device.leave_network)
            scenario.simulator.schedule(
                15.0, lambda d=device, s=scenario: d.enter_network(s.aggregator("net-3"))
            )
            scenario.run_until(30.0)
            durations[topology] = device.last_handshake.duration_s
        assert durations["line"] == pytest.approx(durations["full"], abs=0.05)
