"""Tests for the fully decentralized (aggregator-free) variant."""

import pytest

from repro.chain import Blockchain, audit_chain
from repro.decentral import DecentralizedDevice, DecentralizedNetwork
from repro.errors import ConsensusError
from repro.ids import DeviceId
from repro.net.backhaul import BackhaulMesh
from repro.sim import Simulator
from repro.workloads.profiles import SinusoidProfile


def build_committee(n=4, seed=0, round_interval=1.0):
    sim = Simulator(seed=seed)
    mesh = BackhaulMesh(sim)
    chain = Blockchain(authorized=set())
    devices = [
        DecentralizedDevice(
            sim,
            DeviceId(f"node{i}"),
            mesh,
            SinusoidProfile(mean_ma=50.0 + 10 * i, amplitude_ma=20.0,
                            period_s=7.0 + i),
        )
        for i in range(n)
    ]
    network = DecentralizedNetwork(
        sim, devices, chain, round_interval_s=round_interval
    )
    return sim, chain, devices, network


class TestHonestCommittee:
    def test_rounds_commit_blocks(self):
        sim, chain, devices, network = build_committee()
        network.start()
        sim.run_until(10.5)
        assert network.commits >= 9
        assert network.failures == 0
        chain.validate()

    def test_all_devices_recorded(self):
        sim, chain, devices, network = build_committee()
        network.start()
        sim.run_until(6.5)
        for device in devices:
            records = chain.records_for_device(device.device_id.uid)
            assert records, device.device_id.name

    def test_ledger_energy_matches_meters(self):
        sim, chain, devices, network = build_committee()
        network.start()
        sim.run_until(10.5)
        network.drain()
        sim.run_until(12.0)
        for device in devices:
            ledger = chain.total_energy_mwh(device.device_id.uid)
            measured = device.meter.total_energy_mwh
            assert ledger == pytest.approx(measured, rel=0.02)

    def test_block_creators_rotate(self):
        sim, chain, _, network = build_committee()
        network.start()
        sim.run_until(8.5)
        creators = {block.header.aggregator for block in chain}
        assert len(creators) >= 3

    def test_audit_clean(self):
        sim, chain, _, network = build_committee()
        network.start()
        sim.run_until(5.5)
        assert audit_chain(chain).clean

    def test_commit_latency_reflects_mesh(self):
        sim, _, _, network = build_committee()
        network.start()
        sim.run_until(5.5)
        for latency in network.commit_latencies:
            assert 0.004 < latency < 0.05


class TestByzantineProposer:
    def test_rewritten_record_rejected_by_committee(self):
        sim, chain, devices, network = build_committee()
        network.start()
        sim.run_until(3.5)  # a few honest rounds
        network.stop()
        sim.run_until(3.7)  # let any in-flight round finish
        honest_height = chain.height

        # Drive one malicious round by hand: gossip normally, then the
        # proposer rewrites a victim's record before proposing.
        round_index = 1000
        for device in devices:
            device.enter_round(round_index)
            device.broadcast_round(round_index)
        sim.run_until(sim.now + 0.1)  # let gossip settle
        proposer = devices[0]
        batch = proposer.round_view(round_index)
        victim_uid = devices[1].device_id.uid
        forged = []
        for record in batch:
            if record["device_uid"] == victim_uid:
                record = dict(record, energy_mwh=0.0, current_ma=0.0)
            forged.append(record)
        outcomes = []
        network._consensus.propose(forged, lambda ok, lat: outcomes.append(ok))
        sim.run_until(sim.now + 0.5)
        assert outcomes == [False]
        assert chain.height == honest_height

    def test_dropped_record_rejected(self):
        sim, chain, devices, network = build_committee()
        round_index = 2000
        for device in devices:
            device.enter_round(round_index)
        # Everyone samples a bit first.
        for device in devices:
            device.start()
        sim.run_until(1.0)
        for device in devices:
            device.broadcast_round(round_index)
        sim.run_until(sim.now + 0.1)
        proposer = devices[0]
        batch = [
            r for r in proposer.round_view(round_index)
            if r["device_uid"] != devices[2].device_id.uid
        ]
        outcomes = []
        network._consensus.propose(batch, lambda ok, lat: outcomes.append(ok))
        sim.run_until(sim.now + 0.5)
        assert outcomes == [False]
        assert devices[2].rejections > 0


class TestCommitteeValidation:
    def test_too_small_committee_rejected(self):
        sim = Simulator()
        mesh = BackhaulMesh(sim)
        device = DecentralizedDevice(
            sim, DeviceId("solo"), mesh, SinusoidProfile(50.0, 10.0)
        )
        with pytest.raises(ConsensusError):
            DecentralizedNetwork(sim, [device], Blockchain())

    def test_round_interval_must_exceed_settle(self):
        sim, _, devices, _ = build_committee()
        with pytest.raises(ConsensusError):
            DecentralizedNetwork(
                sim, devices[:2], Blockchain(),
                round_interval_s=0.01, gossip_settle_s=0.05,
            )

    def test_view_is_bounded(self):
        sim, chain, devices, network = build_committee(round_interval=0.5)
        network.start()
        sim.run_until(10.0)
        # Views for rounds older than ~5 rounds ago are dropped.
        assert len(devices[0]._view) <= 6
