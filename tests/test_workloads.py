"""Tests for load profiles, mobility traces and scenario builders."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workloads import (
    ApplianceProfile,
    CompositeProfile,
    ConstantProfile,
    DutyCycleProfile,
    EscooterChargeProfile,
    MobilityEvent,
    MobilityTrace,
    SinusoidProfile,
    build_paper_testbed,
    build_scaled_scenario,
)


class TestProfiles:
    def test_constant(self):
        profile = ConstantProfile(42.0)
        assert profile(0.0) == profile(1e6) == 42.0

    def test_constant_negative_rejected(self):
        with pytest.raises(ConfigError):
            ConstantProfile(-1.0)

    def test_duty_cycle_levels(self):
        profile = DutyCycleProfile(high_ma=100.0, low_ma=10.0, period_s=10.0, duty=0.3)
        assert profile(1.0) == 100.0
        assert profile(5.0) == 10.0
        assert profile(11.0) == 100.0  # periodic

    def test_duty_cycle_phase(self):
        base = DutyCycleProfile(100.0, 0.0, period_s=10.0, duty=0.5)
        shifted = DutyCycleProfile(100.0, 0.0, period_s=10.0, duty=0.5, phase_s=5.0)
        assert base(1.0) != shifted(1.0)

    def test_duty_cycle_validation(self):
        with pytest.raises(ConfigError):
            DutyCycleProfile(10.0, 20.0)  # high < low
        with pytest.raises(ConfigError):
            DutyCycleProfile(10.0, duty=1.5)

    def test_sinusoid_range_and_period(self):
        profile = SinusoidProfile(mean_ma=50.0, amplitude_ma=20.0, period_s=10.0)
        values = [profile(t * 0.1) for t in range(200)]
        assert min(values) >= 30.0 - 1e-9
        assert max(values) <= 70.0 + 1e-9
        assert profile(0.0) == pytest.approx(profile(10.0))

    def test_sinusoid_never_negative(self):
        with pytest.raises(ConfigError):
            SinusoidProfile(mean_ma=10.0, amplitude_ma=20.0)

    def test_escooter_cc_then_decay(self):
        profile = EscooterChargeProfile(
            capacity_mah=10.0, initial_soc=0.0, cc_current_ma=100.0, dt_s=1.0
        )
        assert profile(0.0) == pytest.approx(100.0)
        assert profile(60.0) == pytest.approx(100.0)  # still bulk phase
        late = profile(3600.0)
        assert late < 20.0  # deep in CV / finished

    def test_escooter_before_start_zero(self):
        profile = EscooterChargeProfile(start_s=100.0)
        assert profile(50.0) == 0.0
        assert profile(100.0) > 0.0

    def test_escooter_monotone_nonincreasing(self):
        profile = EscooterChargeProfile(capacity_mah=20.0, cc_current_ma=100.0)
        values = [profile(t * 60.0) for t in range(60)]
        assert all(a >= b - 1e-6 for a, b in zip(values, values[1:]))

    def test_appliance_deterministic_for_same_rng_seed(self):
        a = ApplianceProfile(np.random.default_rng(5))
        b = ApplianceProfile(np.random.default_rng(5))
        assert [a(t) for t in range(100)] == [b(t) for t in range(100)]

    def test_appliance_two_levels_only(self):
        profile = ApplianceProfile(np.random.default_rng(1), on_ma=60.0)
        values = {profile(t * 0.5) for t in range(2000)}
        assert values <= {0.0, 60.0}
        assert len(values) == 2  # it actually switches

    def test_appliance_outside_horizon_off(self):
        profile = ApplianceProfile(np.random.default_rng(2), horizon_s=100.0)
        assert profile(1e6) == 0.0
        assert profile(-5.0) == 0.0

    def test_composite_sums(self):
        profile = CompositeProfile(ConstantProfile(10.0), ConstantProfile(5.0))
        assert profile(0.0) == 15.0

    def test_composite_empty_rejected(self):
        with pytest.raises(ConfigError):
            CompositeProfile()


class TestMobilityTrace:
    def test_single_move_shape(self):
        trace = MobilityTrace.single_move("agg1", "agg2", 0.0, 60.0, 10.0)
        actions = [(e.at_time, e.action) for e in trace.events]
        assert actions == [(0.0, "enter"), (60.0, "leave"), (70.0, "enter")]

    def test_alternation_enforced(self):
        with pytest.raises(ConfigError):
            MobilityTrace(
                [
                    MobilityEvent(0.0, "enter", "agg1"),
                    MobilityEvent(1.0, "enter", "agg2"),
                ]
            )
        with pytest.raises(ConfigError):
            MobilityTrace([MobilityEvent(0.0, "leave")])

    def test_events_sorted(self):
        trace = MobilityTrace(
            [
                MobilityEvent(5.0, "leave"),
                MobilityEvent(0.0, "enter", "agg1"),
            ]
        )
        assert [e.action for e in trace.events] == ["enter", "leave"]

    def test_event_validation(self):
        with pytest.raises(ConfigError):
            MobilityEvent(0.0, "teleport")
        with pytest.raises(ConfigError):
            MobilityEvent(0.0, "enter")  # no network
        with pytest.raises(ConfigError):
            MobilityEvent(-1.0, "leave")


class TestScenarios:
    def test_paper_testbed_shape(self):
        scenario = build_paper_testbed(enter_devices=False)
        assert sorted(scenario.aggregators) == ["agg1", "agg2"]
        assert len(scenario.devices) == 4
        assert scenario.mesh.latency_s(
            scenario.aggregator("agg1").aggregator_id,
            scenario.aggregator("agg2").aggregator_id,
        ) == pytest.approx(0.001)

    def test_same_seed_same_chain(self):
        def run(seed):
            scenario = build_paper_testbed(seed=seed)
            scenario.run_until(12.0)
            return scenario.chain.tip_hash

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_unknown_names_rejected(self):
        scenario = build_paper_testbed(enter_devices=False)
        with pytest.raises(ConfigError):
            scenario.device("nope")
        with pytest.raises(ConfigError):
            scenario.aggregator("nope")

    def test_scaled_scenario_shape(self):
        scenario = build_scaled_scenario(3, 4, enter_devices=False)
        assert len(scenario.aggregators) == 3
        assert len(scenario.devices) == 12
        # Full mesh: any pair routable.
        names = list(scenario.aggregators.values())
        assert scenario.mesh.latency_s(
            names[0].aggregator_id, names[2].aggregator_id
        ) > 0

    def test_scaled_scenario_runs(self):
        scenario = build_scaled_scenario(2, 3, seed=1)
        scenario.run_until(10.0)
        assert scenario.chain.height > 0
        scenario.chain.validate()

    def test_scaled_validation(self):
        with pytest.raises(ConfigError):
            build_scaled_scenario(0, 1)
        with pytest.raises(ConfigError):
            build_scaled_scenario(1, -1)
