"""Tests for demand estimation and load balancing (§IV future work)."""

import pytest

from repro.chain import Blockchain
from repro.errors import ConfigError
from repro.planning import (
    BalanceProblem,
    NetworkDemandEstimator,
    balance_min_max_utilisation,
    greedy_rssi_assignment,
)
from repro.workloads.scenarios import build_paper_testbed


class TestDemandEstimator:
    def make_chain(self):
        chain = Blockchain()
        records = []
        for t in range(30):
            records.append(
                {"device": "d1", "device_uid": "u1", "sequence": t,
                 "measured_at": float(t) * 0.5, "energy_mwh": 0.5,
                 "network": "agg1"}
            )
        chain.append("agg1", 1.0, records)
        chain.append(
            "agg2", 1.0,
            [{"device": "d2", "device_uid": "u2", "sequence": 0,
              "measured_at": 0.3, "energy_mwh": 2.0, "network": "agg2"}],
        )
        return chain

    def test_demand_series_buckets(self):
        estimator = NetworkDemandEstimator(self.make_chain(), interval_s=1.0)
        series = estimator.demand_series("agg1")
        # Two 0.5 s records per 1 s bucket at 0.5 mWh each.
        assert all(v == pytest.approx(1.0) for v in series)

    def test_forecast_of_constant_demand(self):
        estimator = NetworkDemandEstimator(self.make_chain(), interval_s=1.0)
        assert estimator.forecast("agg1") == pytest.approx(1.0, rel=0.05)

    def test_forecast_all(self):
        estimator = NetworkDemandEstimator(self.make_chain(), interval_s=1.0)
        result = estimator.forecast_all(["agg1", "agg2"])
        assert set(result) == {"agg1", "agg2"}
        assert result["agg2"] == pytest.approx(2.0)

    def test_unknown_network_is_empty(self):
        estimator = NetworkDemandEstimator(self.make_chain())
        assert estimator.demand_series("nowhere") == []
        assert estimator.forecast("nowhere") == 0.0

    def test_estimates_from_real_run(self):
        scenario = build_paper_testbed(seed=3)
        scenario.run_until(20.0)
        estimator = NetworkDemandEstimator(scenario.chain, interval_s=1.0)
        forecast = estimator.forecast("agg1")
        assert forecast > 0

    def test_invalid_interval(self):
        with pytest.raises(Exception):
            NetworkDemandEstimator(Blockchain(), interval_s=0.0)


class TestBalanceProblem:
    def test_validation(self):
        with pytest.raises(ConfigError):
            BalanceProblem({}, {})
        with pytest.raises(ConfigError):
            BalanceProblem({"a": -1}, {})
        with pytest.raises(ConfigError):
            BalanceProblem({"a": 1}, {"d": {}})
        with pytest.raises(ConfigError):
            BalanceProblem({"a": 1}, {"d": {"zz": -50.0}})


class TestGreedyAssignment:
    def test_everyone_picks_strongest(self):
        problem = BalanceProblem(
            capacities={"a": 10, "b": 10},
            reachable={
                "d1": {"a": -50.0, "b": -70.0},
                "d2": {"a": -80.0, "b": -55.0},
            },
        )
        assignment = greedy_rssi_assignment(problem)
        assert assignment.mapping == {"d1": "a", "d2": "b"}
        assert assignment.unassigned == []

    def test_overflow_cascades_to_next_best(self):
        problem = BalanceProblem(
            capacities={"a": 1, "b": 10},
            reachable={
                "d1": {"a": -50.0, "b": -70.0},
                "d2": {"a": -51.0, "b": -71.0},
            },
        )
        assignment = greedy_rssi_assignment(problem)
        assert assignment.load("a") == 1
        assert assignment.load("b") == 1

    def test_stranded_device_reported(self):
        problem = BalanceProblem(
            capacities={"a": 1},
            reachable={"d1": {"a": -50.0}, "d2": {"a": -55.0}},
        )
        assignment = greedy_rssi_assignment(problem)
        assert len(assignment.unassigned) == 1


class TestBalancedAssignment:
    def hotspot_problem(self):
        # Six devices all prefer "a" (a popular charging location), but
        # four of them can also reach "b".
        reachable = {}
        for i in range(6):
            candidates = {"a": -50.0 - i}
            if i >= 2:
                candidates["b"] = -65.0
            reachable[f"d{i}"] = candidates
        return BalanceProblem(capacities={"a": 6, "b": 6}, reachable=reachable)

    def test_balanced_beats_greedy_on_max_utilisation(self):
        problem = self.hotspot_problem()
        greedy = greedy_rssi_assignment(problem)
        balanced = balance_min_max_utilisation(problem)
        assert balanced.unassigned == []
        assert balanced.max_utilisation(problem) < greedy.max_utilisation(problem)

    def test_balanced_respects_reachability(self):
        problem = self.hotspot_problem()
        balanced = balance_min_max_utilisation(problem)
        for device, aggregator in balanced.mapping.items():
            assert aggregator in problem.reachable[device]

    def test_balanced_places_everyone_when_feasible(self):
        problem = BalanceProblem(
            capacities={"a": 2, "b": 2},
            reachable={
                "d1": {"a": -50.0},
                "d2": {"a": -50.0},
                "d3": {"a": -50.0, "b": -70.0},
                "d4": {"b": -60.0},
            },
        )
        balanced = balance_min_max_utilisation(problem)
        assert balanced.unassigned == []
        assert balanced.load("a") == 2
        assert balanced.load("b") == 2

    def test_infeasible_falls_back_to_greedy(self):
        problem = BalanceProblem(
            capacities={"a": 1},
            reachable={"d1": {"a": -50.0}, "d2": {"a": -55.0}},
        )
        result = balance_min_max_utilisation(problem)
        assert len(result.unassigned) == 1

    def test_utilisation_accounting(self):
        problem = BalanceProblem(
            capacities={"a": 4, "b": 2},
            reachable={"d1": {"a": -50.0}, "d2": {"b": -50.0}},
        )
        assignment = greedy_rssi_assignment(problem)
        utilisation = assignment.utilisation(problem)
        assert utilisation["a"] == 0.25
        assert utilisation["b"] == 0.5
        assert assignment.max_utilisation(problem) == 0.5
