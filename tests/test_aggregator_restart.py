"""Failure injection: aggregator crash/restart and protocol recovery."""

import pytest

from repro.ids import DeviceId
from repro.protocol.device_fsm import DevicePhase
from repro.workloads.scenarios import build_paper_testbed


@pytest.fixture()
def restarted_world():
    scenario = build_paper_testbed(seed=91)
    scenario.run_until(12.0)
    agg1 = scenario.aggregator("agg1")
    agg1.simulate_crash_restart()
    return scenario, agg1


class TestAggregatorRestart:
    def test_volatile_state_cleared_ledger_kept(self, restarted_world):
        scenario, agg1 = restarted_world
        assert agg1.registry.member_count == 0
        assert scenario.chain.height > 0
        scenario.chain.validate()

    def test_devices_recover_via_reregistration(self, restarted_world):
        scenario, agg1 = restarted_world
        scenario.run_until(16.0)
        # Both home devices are members again, with fresh addresses.
        assert agg1.registry.is_master_member(DeviceId("device1"))
        assert agg1.registry.is_master_member(DeviceId("device2"))
        for name in ("device1", "device2"):
            assert scenario.device(name).fsm.phase is DevicePhase.REPORTING

    def test_recovery_is_fast(self, restarted_world):
        # One report interval to get Nack'd plus one round-trip: the
        # fleet is re-registered well within a second.
        scenario, agg1 = restarted_world
        scenario.run_until(13.0)
        assert agg1.registry.member_count == 2

    def test_no_consumption_lost_across_restart(self, restarted_world):
        scenario, agg1 = restarted_world
        scenario.run_until(25.0)
        device = scenario.device("device1")
        records = scenario.chain.records_for_device(device.device_id.uid)
        around_restart = [
            r for r in records if 11.5 <= float(r["measured_at"]) <= 13.5
        ]
        # 10 Hz over the 2 s window spanning the restart.
        assert len(around_restart) >= 18

    def test_other_network_unaffected(self, restarted_world):
        scenario, _ = restarted_world
        agg2 = scenario.aggregator("agg2")
        assert agg2.registry.member_count == 2
        scenario.run_until(15.0)
        assert agg2.nacks_sent == 0

    def test_unknown_device_still_rejected_after_restart(self, restarted_world):
        # The ledger-vouching path must not become an open door: a
        # device with no committed history is refused.
        scenario, agg1 = restarted_world
        assert not agg1._ledger_vouches_for(DeviceId("stranger"))
        # device3's home is agg2: agg1's ledger vouching is per-network.
        assert not agg1._ledger_vouches_for(DeviceId("device3"))
        assert agg1._ledger_vouches_for(DeviceId("device1"))

    def test_double_restart_converges(self):
        scenario = build_paper_testbed(seed=92)
        scenario.run_until(12.0)
        agg1 = scenario.aggregator("agg1")
        agg1.simulate_crash_restart()
        scenario.run_until(14.0)
        agg1.simulate_crash_restart()
        scenario.run_until(18.0)
        assert agg1.registry.member_count == 2
        scenario.chain.validate()
