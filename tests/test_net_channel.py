"""Tests for the wireless channel and Wi-Fi join models."""

import numpy as np
import pytest

from repro.errors import ChannelError, ConfigError
from repro.net import ChannelParams, WifiParams, WifiRadio, WirelessChannel


def make_channel(seed=0, **overrides) -> WirelessChannel:
    return WirelessChannel(ChannelParams(**overrides), np.random.default_rng(seed))


class TestChannel:
    def test_rssi_decreases_with_distance(self):
        channel = make_channel(shadowing_sigma_db=0.0)
        assert channel.rssi_dbm(1.0) > channel.rssi_dbm(10.0) > channel.rssi_dbm(100.0)

    def test_rssi_at_reference(self):
        channel = make_channel(shadowing_sigma_db=0.0)
        # At 1 m: tx power minus reference loss.
        assert channel.rssi_dbm(1.0) == pytest.approx(16.0 - 40.0)

    def test_shadowing_adds_variance(self):
        channel = make_channel(shadowing_sigma_db=4.0)
        values = {channel.rssi_dbm(10.0) for _ in range(10)}
        assert len(values) > 1

    def test_per_monotone_in_rssi(self):
        channel = make_channel()
        assert channel.packet_error_rate(-95.0) > channel.packet_error_rate(-80.0)

    def test_per_midpoint(self):
        channel = make_channel()
        assert channel.packet_error_rate(-88.0) == pytest.approx(0.5)

    def test_per_extremes_bounded(self):
        channel = make_channel()
        assert channel.packet_error_rate(-30.0) < 0.001
        assert channel.packet_error_rate(-120.0) > 0.999

    def test_strong_signal_rarely_loses(self):
        channel = make_channel(1)
        losses = sum(channel.packet_lost(-50.0) for _ in range(1000))
        assert losses == 0

    def test_airtime_scales_with_size(self):
        channel = make_channel()
        assert channel.airtime_s(1000) > channel.airtime_s(100)

    def test_airtime_known_value(self):
        channel = make_channel(phy_rate_mbps=6.0)
        # 60 bytes overhead + 0 payload at 6 Mbps.
        assert channel.airtime_s(0) == pytest.approx(480 / 6e6)

    def test_invalid_inputs_rejected(self):
        channel = make_channel()
        with pytest.raises(ChannelError):
            channel.rssi_dbm(0.0)
        with pytest.raises(ChannelError):
            channel.airtime_s(-1)
        with pytest.raises(ConfigError):
            ChannelParams(path_loss_exponent=0.0)
        with pytest.raises(ConfigError):
            ChannelParams(phy_rate_mbps=-1.0)


class TestWifiRadio:
    def make_radio(self, seed=0, **overrides) -> WifiRadio:
        return WifiRadio(WifiParams(**overrides), np.random.default_rng(seed))

    def test_scan_duration_matches_passes(self):
        radio = self.make_radio()
        duration = radio.scan_duration_s()
        # Default: 3 passes x 13 channels x 0.110 s.
        assert duration == pytest.approx(3 * 13 * 0.110)

    def test_scan_passes_range_respected(self):
        radio = self.make_radio(scan_passes_min=1, scan_passes_max=4)
        per_pass = 13 * 0.110
        for _ in range(50):
            passes = radio.scan_duration_s() / per_pass
            assert 1 <= round(passes) <= 4

    def test_association_jitters_around_median(self):
        radio = self.make_radio(1)
        samples = [radio.association_duration_s() for _ in range(300)]
        assert np.median(samples) == pytest.approx(1.2, rel=0.15)
        assert min(samples) > 0

    def test_zero_jitter_deterministic(self):
        radio = self.make_radio(assoc_jitter_sigma=0.0)
        assert radio.association_duration_s() == 1.2

    def test_join_is_scan_plus_assoc_scale(self):
        radio = self.make_radio(2)
        join = radio.join_duration_s()
        # Paper's T_handshake is ~6 s; the radio part alone is ~5.5 s.
        assert 4.5 < join < 7.0

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigError):
            WifiParams(channels=0)
        with pytest.raises(ConfigError):
            WifiParams(scan_passes_min=3, scan_passes_max=2)
        with pytest.raises(ConfigError):
            WifiParams(assoc_latency_s=0.0)
