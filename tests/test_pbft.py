"""Tests for the PBFT-lite two-phase consensus."""

import pytest

from repro.chain.pbft import PbftCluster, PbftReplica
from repro.errors import ConsensusError
from repro.ids import AggregatorId
from repro.net import BackhaulLink, BackhaulMesh
from repro.sim import Simulator

RECORDS_A = [{"device": "d", "device_uid": "u", "sequence": 0,
              "measured_at": 0.0, "energy_mwh": 0.5}]
RECORDS_B = [{"device": "d", "device_uid": "u", "sequence": 0,
              "measured_at": 0.0, "energy_mwh": 0.0}]  # the forged half


def build_cluster(n=4, check=None, seed=0):
    sim = Simulator(seed=seed)
    mesh = BackhaulMesh(sim)
    replicas = [
        PbftReplica(sim, AggregatorId(f"r{i}"), mesh, check=check)
        for i in range(n)
    ]
    for i, a in enumerate(replicas):
        for b in replicas[i + 1:]:
            mesh.connect(BackhaulLink(a.node_id, b.node_id, latency_s=0.001))
    return sim, PbftCluster(replicas)


class TestHonestPath:
    def test_all_replicas_execute_and_converge(self):
        sim, cluster = build_cluster(4)
        cluster.propose(RECORDS_A)
        sim.run()
        assert all(r.executed_count == 1 for r in cluster.replicas)
        tip = cluster.converged_tip()
        assert tip is not None
        for replica in cluster.replicas:
            replica.chain.validate()
            assert replica.chain.height == 1

    def test_multiple_sequences_in_order(self):
        sim, cluster = build_cluster(7)
        for i in range(5):
            cluster.propose([dict(RECORDS_A[0], sequence=i)])
            sim.run()
        assert cluster.converged_tip() is not None
        assert cluster.replicas[0].chain.height == 5

    def test_f_and_quorum(self):
        _, cluster4 = build_cluster(4)
        assert cluster4.f == 1 and cluster4.quorum == 3
        _, cluster7 = build_cluster(7)
        assert cluster7.f == 2 and cluster7.quorum == 5

    def test_implausible_payload_not_executed(self):
        def plausible(records):
            return all(r["energy_mwh"] < 100 for r in records)

        sim, cluster = build_cluster(4, check=plausible)
        cluster.propose([dict(RECORDS_A[0], energy_mwh=1e9)])
        sim.run()
        assert all(r.executed_count == 0 for r in cluster.replicas)


class TestByzantinePrimary:
    def test_equivocation_never_executes(self):
        # The property single-phase PoA cannot give: a primary sending
        # different blocks to different replicas commits NOWHERE,
        # because neither digest reaches a 2f+1 prepare quorum.
        sim, cluster = build_cluster(4)
        cluster.propose_equivocating(RECORDS_A, RECORDS_B)
        sim.run()
        assert all(r.executed_count == 0 for r in cluster.replicas)
        assert cluster.converged_tip() is not None  # all still at genesis

    def test_equivocation_never_diverges_at_scale(self):
        sim, cluster = build_cluster(10)
        cluster.propose_equivocating(RECORDS_A, RECORDS_B)
        sim.run()
        tips = {r.chain.tip_hash for r in cluster.replicas}
        assert len(tips) == 1

    def test_equivocation_is_detected_by_someone(self):
        # With prepares carrying digests, replicas holding digest A see
        # quorum-blocking prepares for digest B — and any replica that
        # receives both pre-prepares flags it.  (Detection requires the
        # conflicting halves to cross paths; at n=4 with 3 non-primary
        # replicas, at least the odd one out overlaps.)
        sim, cluster = build_cluster(4)
        cluster.propose_equivocating(RECORDS_A, RECORDS_B)
        sim.run()
        # No execution is the hard guarantee; detection is best-effort.
        assert all(r.executed_count == 0 for r in cluster.replicas)

    def test_honest_round_after_byzantine_round(self):
        sim, cluster = build_cluster(4)
        cluster.propose_equivocating(RECORDS_A, RECORDS_B)
        sim.run()
        cluster.propose(RECORDS_A)
        sim.run()
        assert all(r.executed_count == 1 for r in cluster.replicas)
        assert cluster.converged_tip() is not None


class TestClusterValidation:
    def test_too_small_committee_rejected(self):
        sim = Simulator()
        mesh = BackhaulMesh(sim)
        replicas = [
            PbftReplica(sim, AggregatorId(f"r{i}"), mesh) for i in range(3)
        ]
        with pytest.raises(ConsensusError):
            PbftCluster(replicas)

    def test_duplicate_identities_rejected(self):
        sim = Simulator()
        mesh = BackhaulMesh(sim)
        PbftReplica(sim, AggregatorId("r0"), mesh)
        with pytest.raises(Exception):
            # Second registration of the same mesh identity fails at the
            # mesh level already.
            PbftReplica(sim, AggregatorId("r0"), mesh)

    def test_bad_quorum_rejected(self):
        sim = Simulator()
        mesh = BackhaulMesh(sim)
        replica = PbftReplica(sim, AggregatorId("r0"), mesh)
        with pytest.raises(ConsensusError):
            replica.set_quorum(0)
