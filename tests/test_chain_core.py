"""Tests for hashing, Merkle trees and blocks."""

import pytest

from repro.chain import Block, BlockHeader, MerkleTree, canonical_bytes, merkle_root, sha256_hex
from repro.chain.hashing import GENESIS_HASH, chain_hash, hash_value
from repro.errors import BlockValidationError, ChainError


class TestHashing:
    def test_canonical_bytes_key_order_invariant(self):
        assert canonical_bytes({"a": 1, "b": 2}) == canonical_bytes({"b": 2, "a": 1})

    def test_canonical_bytes_distinguishes_values(self):
        assert canonical_bytes({"a": 1}) != canonical_bytes({"a": 2})

    def test_nan_rejected(self):
        with pytest.raises(ChainError):
            canonical_bytes({"x": float("nan")})

    def test_unserialisable_rejected(self):
        with pytest.raises(ChainError):
            canonical_bytes({"x": object()})

    def test_sha256_known_vector(self):
        assert (
            sha256_hex(b"")
            == "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_hash_value_stable(self):
        assert hash_value([1, 2, 3]) == hash_value([1, 2, 3])

    def test_chain_hash_depends_on_both_inputs(self):
        h1 = chain_hash(GENESIS_HASH, {"a": 1})
        h2 = chain_hash(GENESIS_HASH, {"a": 2})
        h3 = chain_hash(h1, {"a": 1})
        assert len({h1, h2, h3}) == 3

    def test_chain_hash_validates_previous(self):
        with pytest.raises(ChainError):
            chain_hash("short", {})


class TestMerkle:
    def test_root_deterministic(self):
        records = [{"v": i} for i in range(7)]
        assert merkle_root(records) == merkle_root(records)

    def test_root_changes_with_any_record(self):
        records = [{"v": i} for i in range(8)]
        mutated = [dict(r) for r in records]
        mutated[3]["v"] = 99
        assert merkle_root(records) != merkle_root(mutated)

    def test_root_changes_with_order(self):
        a = [{"v": 1}, {"v": 2}]
        assert merkle_root(a) != merkle_root(list(reversed(a)))

    def test_empty_root_is_sentinel(self):
        assert merkle_root([]) == merkle_root([])
        assert merkle_root([]) != merkle_root([{}])

    def test_single_leaf(self):
        tree = MerkleTree([{"v": 1}])
        assert tree.leaf_count == 1
        assert tree.proof(0) == []
        assert MerkleTree.verify_proof({"v": 1}, [], tree.root)

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 8, 13])
    def test_proofs_verify_for_all_leaves(self, n):
        records = [{"v": i} for i in range(n)]
        tree = MerkleTree(records)
        for i, record in enumerate(records):
            proof = tree.proof(i)
            assert MerkleTree.verify_proof(record, proof, tree.root)

    def test_proof_fails_for_wrong_record(self):
        records = [{"v": i} for i in range(5)]
        tree = MerkleTree(records)
        proof = tree.proof(2)
        assert not MerkleTree.verify_proof({"v": 99}, proof, tree.root)

    def test_proof_fails_for_wrong_root(self):
        records = [{"v": i} for i in range(5)]
        tree = MerkleTree(records)
        assert not MerkleTree.verify_proof(records[0], tree.proof(0), "0" * 64)

    def test_proof_index_out_of_range(self):
        with pytest.raises(ChainError):
            MerkleTree([{"v": 1}]).proof(1)

    def test_bad_proof_side_rejected(self):
        with pytest.raises(ChainError):
            MerkleTree.verify_proof({}, [("X", "0" * 64)], "0" * 64)

    def test_leaf_node_domain_separation(self):
        # A single-leaf tree's root differs from the leaf content hashed
        # as a node, so leaves cannot masquerade as interior nodes.
        tree = MerkleTree(["x"])
        assert tree.root != sha256_hex(canonical_bytes("x"))


class TestBlock:
    def make_block(self, height=0, prev=GENESIS_HASH, records=None):
        return Block.create(
            height=height,
            previous_hash=prev,
            aggregator="agg1",
            timestamp=1.0,
            records=records if records is not None else [{"v": 1}, {"v": 2}],
        )

    def test_create_sets_consistent_fields(self):
        block = self.make_block()
        assert block.header.record_count == 2
        assert block.block_hash == block.compute_hash()
        block.validate_structure()

    def test_hash_changes_with_records(self):
        a = self.make_block(records=[{"v": 1}])
        b = self.make_block(records=[{"v": 2}])
        assert a.block_hash != b.block_hash

    def test_hash_changes_with_previous(self):
        a = self.make_block()
        b = self.make_block(prev=a.block_hash, height=1)
        assert a.block_hash != b.block_hash

    def test_tampered_record_fails_validation(self):
        block = self.make_block()
        tampered = Block(
            header=block.header,
            records=({"v": 999}, {"v": 2}),
            block_hash=block.block_hash,
        )
        with pytest.raises(BlockValidationError):
            tampered.validate_structure()

    def test_wrong_count_fails_validation(self):
        block = self.make_block()
        bad_header = BlockHeader(
            height=block.header.height,
            previous_hash=block.header.previous_hash,
            merkle_root=block.header.merkle_root,
            aggregator=block.header.aggregator,
            timestamp=block.header.timestamp,
            record_count=5,
        )
        tampered = Block(bad_header, block.records, block.block_hash)
        with pytest.raises(BlockValidationError):
            tampered.validate_structure()

    def test_dict_roundtrip(self):
        block = self.make_block()
        rebuilt = Block.from_dict(block.to_dict())
        assert rebuilt.block_hash == block.block_hash
        rebuilt.validate_structure()

    def test_empty_records_block_valid(self):
        block = self.make_block(records=[])
        block.validate_structure()

    def test_header_validation(self):
        with pytest.raises(BlockValidationError):
            BlockHeader(-1, GENESIS_HASH, "r", "a", 0.0, 0)
        with pytest.raises(BlockValidationError):
            BlockHeader(0, "short", "r", "a", 0.0, 0)
        with pytest.raises(BlockValidationError):
            BlockHeader(0, GENESIS_HASH, "r", "a", 0.0, -1)
