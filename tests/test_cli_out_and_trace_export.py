"""Tests for CLI --out and trace JSONL export."""

import json

from repro.cli import main
from repro.sim import TraceRecorder
from repro.workloads.scenarios import build_paper_testbed


class TestCliOut:
    def test_out_writes_files(self, tmp_path, capsys):
        assert main(["handshake", "--out", str(tmp_path)]) == 0
        written = tmp_path / "handshake.txt"
        assert written.exists()
        assert "T_handshake" in written.read_text()

    def test_no_out_writes_nothing(self, tmp_path, capsys):
        assert main(["handshake"]) == 0
        assert list(tmp_path.iterdir()) == []


class TestTraceExport:
    def test_jsonl_roundtrip_fields(self):
        recorder = TraceRecorder()
        recorder.record(1.5, "cat.a", "actor1", value=3)
        recorder.record(2.5, "cat.b", "actor2")
        lines = recorder.to_jsonl().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {
            "time": 1.5, "category": "cat.a", "actor": "actor1",
            "detail": {"value": 3},
        }

    def test_empty_trace_exports_empty(self):
        assert TraceRecorder().to_jsonl() == ""

    def test_save_jsonl(self, tmp_path):
        recorder = TraceRecorder()
        recorder.record(0.0, "c", "a")
        path = tmp_path / "trace.jsonl"
        count = recorder.save_jsonl(path)
        assert count == 1
        assert json.loads(path.read_text())["category"] == "c"

    def test_full_run_trace_exports(self, tmp_path):
        scenario = build_paper_testbed(seed=5)
        scenario.run_until(8.0)
        path = tmp_path / "run.jsonl"
        count = scenario.simulator.trace.save_jsonl(path)
        assert count > 100
        categories = {
            json.loads(line)["category"]
            for line in path.read_text().splitlines()
        }
        assert "device.registered" in categories
        assert "agg.register_master" in categories

    def test_unserialisable_detail_falls_back_to_str(self):
        recorder = TraceRecorder()
        recorder.record(0.0, "c", "a", obj=object())
        data = json.loads(recorder.to_jsonl())
        assert "object object" in data["detail"]["obj"]
