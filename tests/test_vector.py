"""Vectorized fleet actor tests.

The contract under test: with ``vector.enabled`` the run produces
**byte-identical** observable state to the scalar path — ledger digest,
counters, per-device summaries, monitoring series — while folding
steady-state devices into array-backed cohorts.  Every de-vectorization
trigger (roam, injected fault, tamper, ledger sync) must fall back to
the full per-object actor without breaking that contract.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import ScenarioSpec, build
from repro.runtime.spec import LedgerSpec, TransportSpec, VectorSpec
from repro.vector.backend import NumpyBackend, PythonBackend, select_backend
from repro.workloads.scenarios import scaled_spec

# Fast-join direct transport so short runs reach steady state quickly
# (default scan/assoc/connect would eat ~5.8 s of every run).
FAST_DIRECT = TransportSpec(kind="direct", scan_s=0.05, assoc_s=0.05, connect_s=0.02)


def direct_spec(
    n_networks: int = 1,
    devices: int = 3,
    seed: int = 7,
    **vector_kwargs,
) -> ScenarioSpec:
    spec = scaled_spec(n_networks, devices, seed=seed, transport=FAST_DIRECT)
    if vector_kwargs:
        spec = dataclasses.replace(spec, vector=VectorSpec(**vector_kwargs))
    return spec


def run_snapshot(spec: ScenarioSpec, until: float, mutate=None) -> dict:
    scenario = build(spec)
    if mutate is not None:
        mutate(scenario)
    scenario.run_until(until)
    snap = scenario.snapshot()
    snap.pop("spec")  # differs by design: the vector block is the toggle
    return snap


def canon(snap: dict) -> str:
    return json.dumps(snap, sort_keys=True, default=str)


def assert_identical(spec: ScenarioSpec, until: float, mutate=None, **vector_kwargs):
    vector_kwargs.setdefault("enabled", True)
    vspec = dataclasses.replace(spec, vector=VectorSpec(**vector_kwargs))
    scalar = run_snapshot(spec, until, mutate)
    vector = run_snapshot(vspec, until, mutate)
    assert canon(scalar) == canon(vector)
    return scalar, vector


class TestBitIdentity:
    def test_steady_state_identical(self):
        assert_identical(direct_spec(2, 3), 6.0)

    def test_vectorization_actually_engages(self):
        scenario = build(direct_spec(2, 3, enabled=True))
        scenario.run_until(6.0)
        fleet = scenario.vector_fleets[0]
        assert fleet.vectorized_count == 6
        assert len(scenario.vector_fleets) == 1

    def test_fewer_kernel_events_than_scalar(self):
        spec = direct_spec(1, 4)
        scalar = build(spec)
        scalar.run_until(8.0)
        vector = build(dataclasses.replace(spec, vector=VectorSpec(enabled=True)))
        vector.run_until(8.0)
        assert vector.simulator.events_executed < scalar.simulator.events_executed

    def test_monitoring_export_byte_identical(self, tmp_path):
        spec = direct_spec(2, 2)
        a = build(spec)
        a.run_until(5.0)
        a.export_monitoring(tmp_path / "scalar")
        b = build(dataclasses.replace(spec, vector=VectorSpec(enabled=True)))
        b.run_until(5.0)
        b.export_monitoring(tmp_path / "vector")
        names = sorted(p.name for p in (tmp_path / "scalar").iterdir())
        assert names == sorted(p.name for p in (tmp_path / "vector").iterdir())
        for name in names:
            assert (tmp_path / "scalar" / name).read_bytes() == (
                tmp_path / "vector" / name
            ).read_bytes()

    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        devices=st.integers(min_value=2, max_value=4),
        half=st.integers(min_value=4, max_value=13),
    )
    def test_property_energy_and_payloads_bit_identical(self, seed, devices, half):
        # Quiescent stop times only (mid-interval, off the 0.1 s tick
        # grid): the vector path applies one tick's effects atomically
        # at the staged delivery, so an observation *inside* a tick's
        # ~5 ms delivery window may see scalar's ack round-trip still in
        # flight.  The digest contract covers quiescent instants.
        until = half / 2 + 0.25
        spec = direct_spec(1, devices, seed=seed)
        scalar, vector = assert_identical(spec, until)
        # the blanket snapshot equality already covers these, but spell
        # out the headline claims:
        for name, dev in scalar["devices"].items():
            assert dev["energy_mwh"] == vector["devices"][name]["energy_mwh"]
        assert scalar["ledger_digest"] == vector["ledger_digest"]
        assert scalar["counters"] == vector["counters"]


class TestDevectorizationTriggers:
    def test_roam_releases_device(self):
        spec = direct_spec(2, 3)

        def roam(scenario):
            device = scenario.device("dev-0-0")
            scenario.simulator.schedule(
                3.0, lambda: device.leave_network(), label="test:leave"
            )
            scenario.enter_at("dev-0-0", "net-1", 3.5)

        assert_identical(spec, 8.0, mutate=roam)
        # and the release actually happened on the vector run
        vspec = dataclasses.replace(spec, vector=VectorSpec(enabled=True))
        scenario = build(vspec)
        device = scenario.device("dev-0-0")
        scenario.simulator.schedule(3.0, lambda: device.leave_network())
        released = []
        scenario.run_until(2.0)
        assert device.vectorized
        scenario.run_until(3.0)
        assert not device.vectorized

    def test_hub_fault_releases_unit_devices(self):
        spec = direct_spec(2, 2)

        def crash(scenario):
            hub = scenario.aggregator("net-0").endpoint
            scenario.simulator.schedule(3.0, lambda: hub.set_down(True))
            scenario.simulator.schedule(4.0, lambda: hub.set_down(False))

        assert_identical(spec, 8.0, mutate=crash)
        vspec = dataclasses.replace(spec, vector=VectorSpec(enabled=True))
        scenario = build(vspec)
        hub = scenario.aggregator("net-0").endpoint
        scenario.simulator.schedule(3.0, lambda: hub.set_down(True))
        scenario.run_until(3.0)
        fleet = scenario.vector_fleets[0]
        assert not scenario.device("dev-0-0").vectorized
        assert not scenario.device("dev-0-1").vectorized
        # the other network's cohort rides on
        assert scenario.device("dev-1-0").vectorized

    def test_transport_fault_releases_everyone(self):
        # A channel blackout installs a transport-level injector, which
        # must release every cohort (release_all).
        from repro.runtime.spec import FaultSpec

        spec = dataclasses.replace(
            direct_spec(1, 3),
            faults=(
                FaultSpec(
                    name="blackout",
                    kind="channel_blackout",
                    start_at=3.0,
                    duration_s=1.0,
                ),
            ),
        )
        assert_identical(spec, 8.0)
        vspec = dataclasses.replace(spec, vector=VectorSpec(enabled=True))
        scenario = build(vspec)
        scenario.run_until(3.0)
        assert scenario.vector_fleets[0].vectorized_count == 0

    def test_tamper_attack_releases_device(self):
        from repro.anomaly.tamper import ScalingAttack

        spec = direct_spec(1, 3)

        def attack(scenario):
            device = scenario.device("dev-0-0")
            scenario.simulator.schedule(
                3.0,
                lambda: setattr(device, "tamper_attack", ScalingAttack(0.5)),
                label="test:tamper",
            )

        assert_identical(spec, 8.0, mutate=attack)
        vspec = dataclasses.replace(spec, vector=VectorSpec(enabled=True))
        scenario = build(vspec)
        device = scenario.device("dev-0-0")
        scenario.simulator.schedule(
            3.0, lambda: setattr(device, "tamper_attack", ScalingAttack(0.5))
        )
        scenario.run_until(3.0)
        assert not device.vectorized

    def test_ledger_sync_devices_never_vectorize(self):
        spec = dataclasses.replace(
            direct_spec(1, 3, enabled=True),
            ledger=LedgerSpec(sync_enabled=True),
        )
        scenario = build(spec)
        scenario.run_until(6.0)
        assert scenario.vector_fleets[0].vectorized_count == 0

    def test_released_devices_revectorize_when_quiescent(self):
        spec = direct_spec(1, 3, enabled=True)
        scenario = build(spec)
        hub = scenario.aggregator("net-0").endpoint
        scenario.simulator.schedule(3.0, lambda: hub.set_down(True))
        scenario.simulator.schedule(3.2, lambda: hub.set_down(False))
        scenario.run_until(3.1)
        assert scenario.vector_fleets[0].vectorized_count == 0
        scenario.run_until(10.0)
        assert scenario.vector_fleets[0].vectorized_count == 3


class TestSharding:
    def test_sharded_vector_matches_serial_scalar(self):
        from repro.shard import run_sharded

        spec = direct_spec(2, 2)
        serial = run_snapshot(spec, 4.0)
        vspec = dataclasses.replace(spec, vector=VectorSpec(enabled=True))
        sharded = run_sharded(vspec, 4.0, 2).snapshot()
        sharded.pop("spec")
        sharded.pop("sharding")
        assert canon(serial) == canon(sharded)


class TestVectorSpec:
    def test_default_off_round_trip(self):
        spec = direct_spec(1, 2)
        assert not spec.vector.enabled
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec

    def test_enabled_round_trip_lossless(self):
        spec = direct_spec(
            1, 2, enabled=True, scan_interval_s=2.0, min_cohort=3, backend="python"
        )
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.vector == VectorSpec(
            enabled=True, scan_interval_s=2.0, min_cohort=3, backend="python"
        )

    def test_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            VectorSpec(scan_interval_s=0.0)
        with pytest.raises(ConfigError):
            VectorSpec(min_cohort=0)
        with pytest.raises(ConfigError):
            VectorSpec(backend="fortran")


class TestBackends:
    def test_select_backend(self):
        assert select_backend(force_python=True) is PythonBackend
        assert select_backend() in (NumpyBackend, PythonBackend)

    def test_python_backend_run_identical_to_auto(self):
        spec = direct_spec(1, 3)
        auto = run_snapshot(
            dataclasses.replace(spec, vector=VectorSpec(enabled=True)), 5.0
        )
        python = run_snapshot(
            dataclasses.replace(
                spec, vector=VectorSpec(enabled=True, backend="python")
            ),
            5.0,
        )
        assert canon(auto) == canon(python)


class TestProfilerWeights:
    def test_cohort_events_weighted_as_device_equivalents(self):
        from repro.obs.profiler import KernelProfiler

        spec = direct_spec(1, 3, enabled=True)
        scenario = build(spec)
        profiler = KernelProfiler()
        scenario.simulator.set_profiler(profiler)
        scenario.run_until(6.0)
        snap = profiler.snapshot()
        assert profiler.weighted_events > profiler.events
        assert snap["weighted_events"] == profiler.weighted_events
        cohort_labels = [
            k for k in snap["by_label"] if k.startswith("vector:sample:")
        ]
        assert cohort_labels
        stats = snap["by_label"][cohort_labels[0]]
        assert stats["weighted"] == 3 * stats["count"]

    def test_unweighted_profile_keeps_shape(self):
        from repro.obs.profiler import KernelProfiler

        scenario = build(direct_spec(1, 2))
        profiler = KernelProfiler()
        scenario.simulator.set_profiler(profiler)
        scenario.run_until(2.0)
        snap = profiler.snapshot()
        assert "weighted_events" not in snap
        assert all("weighted" not in s for s in snap["by_label"].values())
