"""Sharded-execution tests.

Covers the sharding contract end to end:

* kernel — ``run_window`` executes strictly below the boundary and
  parks the clock exactly on it,
* partitioning — round-robin and explicit assignments, the spec-level
  and partitioner-level "more shards than aggregators" guards, and the
  conservative window (always <= the minimum cross-shard backhaul
  latency; a requested window can only shorten it),
* determinism — the pinned seed-7 reference digest, counters, summary
  maps and monitoring CSV exports are byte-identical for ``--shards``
  in {1, 2, 4}, in-process and across worker processes, and for any
  randomized assignment (hypothesis),
* the cross-shard message plane — a roaming membership-verify round
  trip crosses the pipe-less plane and comes back,
* the CLI ``--shards`` flag.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.errors import BackhaulError, ConfigError, SimulationError
from repro.ids import AggregatorId, DeviceId
from repro.runtime import ScenarioSpec, ShardSpec, build
from repro.runtime.spec import MeshSpec, TransportSpec
from repro.shard import ShardEngine, ShardPlan, partition, run_sharded
from repro.shard.runner import _boundaries, _route
from repro.sim.kernel import Simulator
from repro.workloads.scenarios import scaled_spec

# Merged ledger tip hash of the seed-7 reference fleet below run to
# t=4.0.  Captured on the serial path; every shard count, execution
# mode and assignment must reproduce it bit for bit.
SHARD_REFERENCE_SEED7_DIGEST = (
    "92af85f1aa32d39416f84e218092b0503bcce32e1c032974432816d7fd2f3cb0"
)

# Fast-join direct transport: the default scan/assoc/connect latencies
# (~5.8 s) would leave a short reference run with an empty ledger.
FAST_DIRECT = TransportSpec(kind="direct", scan_s=0.05, assoc_s=0.05, connect_s=0.02)


def reference_spec(seed: int = 7, mesh_latency_s: float = 0.05) -> ScenarioSpec:
    """4 networks x 3 devices, direct transport, sharding-friendly mesh.

    The 50 ms mesh latency keeps the conservative window count small
    (80 windows for a 4 s run) so shard tests stay fast.
    """
    spec = scaled_spec(4, 3, seed=seed, transport=FAST_DIRECT)
    return dataclasses.replace(spec, mesh=MeshSpec(latency_s=mesh_latency_s))


class TestRunWindow:
    def test_strictly_before_boundary(self):
        sim = Simulator(trace=False)
        fired = []
        sim.schedule(0.5, lambda: fired.append("early"))
        sim.schedule(1.0, lambda: fired.append("boundary"))
        sim.run_window(1.0)
        assert fired == ["early"]
        assert sim.now == 1.0
        sim.run_until(1.0)  # inclusive step picks the boundary event up
        assert fired == ["early", "boundary"]

    def test_injection_at_boundary_then_next_window(self):
        sim = Simulator(trace=False)
        fired = []
        sim.run_window(1.0)
        sim.schedule(1.0, lambda: fired.append("injected"))
        sim.run_window(2.0)
        assert fired == ["injected"]
        assert sim.now == 2.0

    def test_rejects_past_boundary(self):
        sim = Simulator(trace=False)
        sim.run_until(2.0)
        with pytest.raises(SimulationError):
            sim.run_window(1.0)


class TestPartition:
    def test_round_robin_groups(self):
        plan = partition(reference_spec(), 2)
        assert plan.groups == (("net-0", "net-2"), ("net-1", "net-3"))
        assert plan.shard_of("net-2") == 0
        assert plan.shard_of("net-1") == 1

    def test_window_is_min_cross_shard_latency(self):
        plan = partition(reference_spec(mesh_latency_s=0.025), 4)
        assert plan.window_s == 0.025

    def test_requested_window_clamped_to_lookahead(self):
        spec = reference_spec(mesh_latency_s=0.05)
        assert partition(spec, 2, window_s=10.0).window_s == 0.05
        assert partition(spec, 2, window_s=0.01).window_s == 0.01

    def test_single_shard_spanning_group_has_no_window(self):
        # All networks on one shard of two would be invalid; instead:
        # an assignment where every mesh link is shard-internal cannot
        # happen on a full mesh, so check the no-cross-links case via a
        # one-network spec.
        solo = scaled_spec(1, 2, seed=1, transport=FAST_DIRECT)
        plan = partition(solo, 1)
        assert plan.window_s is None

    def test_more_shards_than_aggregators_rejected(self):
        with pytest.raises(ConfigError, match="4 aggregators but 5 shards"):
            partition(reference_spec(), 5)

    def test_spec_level_guard(self):
        spec = reference_spec()
        with pytest.raises(ConfigError, match="aggregators but"):
            dataclasses.replace(spec, sharding=ShardSpec(shards=5))

    def test_assignment_validation(self):
        spec = reference_spec()
        with pytest.raises(ConfigError, match="owns no aggregators"):
            partition(spec, 2, assignment=((), ("net-0", "net-1", "net-2", "net-3")))
        with pytest.raises(ConfigError, match="unknown network"):
            partition(spec, 2, assignment=(("net-0", "nope"), ("net-1", "net-2")))
        with pytest.raises(ConfigError, match="two shards"):
            partition(
                spec, 2, assignment=(("net-0", "net-1"), ("net-1", "net-2"))
            )
        with pytest.raises(ConfigError, match="misses networks"):
            partition(spec, 2, assignment=(("net-0",), ("net-1",)))
        with pytest.raises(ConfigError, match="groups for"):
            partition(spec, 3, assignment=(("net-0",), ("net-1", "net-2", "net-3")))

    def test_shard_spec_round_trips(self):
        spec = dataclasses.replace(
            reference_spec(),
            sharding=ShardSpec(
                shards=2,
                window_s=0.01,
                assignment=(("net-0", "net-3"), ("net-1", "net-2")),
            ),
        )
        data = json.loads(spec.to_json())
        assert ScenarioSpec.from_dict(data) == spec


class TestDeterminism:
    def test_serial_matches_pinned_digest(self):
        run = run_sharded(reference_spec(), 4.0, shards=1)
        assert run.mode == "serial"
        assert run.ledger_digest == SHARD_REFERENCE_SEED7_DIGEST

    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_matches_serial_everywhere(self, tmp_path, shards):
        spec = reference_spec()
        serial = run_sharded(spec, 4.0, shards=1)
        run = run_sharded(spec, 4.0, shards=shards, processes=False)
        assert run.ledger_digest == SHARD_REFERENCE_SEED7_DIGEST
        assert run.counters == serial.counters
        assert run.devices == serial.devices
        assert run.aggregators == serial.aggregators
        assert run.chain.height == serial.chain.height
        assert run.summary()["total_energy_mwh"] == pytest.approx(
            serial.summary()["total_energy_mwh"]
        )
        serial_dir = tmp_path / "serial"
        shard_dir = tmp_path / f"s{shards}"
        serial.export_monitoring(serial_dir)
        run.export_monitoring(shard_dir)
        names = sorted(p.name for p in serial_dir.iterdir())
        assert names == sorted(p.name for p in shard_dir.iterdir())
        for name in names:
            assert (serial_dir / name).read_bytes() == (shard_dir / name).read_bytes()

    def test_worker_processes_match_serial(self):
        spec = reference_spec()
        run = run_sharded(spec, 4.0, shards=2, processes=True)
        assert run.mode == "processes"
        assert run.ledger_digest == SHARD_REFERENCE_SEED7_DIGEST
        assert sum(run.shard_events) > 0

    def test_explicit_assignment_matches(self):
        run = run_sharded(
            reference_spec(),
            4.0,
            shards=2,
            assignment=(("net-3", "net-0"), ("net-2", "net-1")),
            processes=False,
        )
        assert run.ledger_digest == SHARD_REFERENCE_SEED7_DIGEST

    def test_spec_sharding_block_drives_the_run(self):
        spec = dataclasses.replace(reference_spec(), sharding=ShardSpec(shards=2))
        run = run_sharded(spec, 4.0, processes=False)
        assert run.shards == 2
        assert run.ledger_digest == SHARD_REFERENCE_SEED7_DIGEST

    def test_mqtt_rejected_for_multiple_shards(self):
        spec = scaled_spec(4, 2, seed=7)  # default transport: mqtt
        with pytest.raises(ConfigError, match="transport 'direct'"):
            run_sharded(spec, 1.0, shards=2)

    def test_auto_shards_runs(self):
        run = run_sharded(reference_spec(), 2.0, shards="auto")
        assert 1 <= run.shards <= 4


class TestCrossShardPlane:
    def test_membership_verify_round_trip(self):
        spec = reference_spec()
        plan = partition(spec, 2)
        engines = [ShardEngine(spec, plan, i, trace=False) for i in range(2)]
        verdicts = []
        unit = engines[0].scenario.aggregators["net-0"]
        # net-1 lives on shard 1: the request crosses the plane, the
        # remote master answers, and the response crosses back.
        unit._liaison.request_verification(
            DeviceId("ghost-device"), AggregatorId("net-1"), verdicts.append
        )
        for boundary in _boundaries(plan.window_s, 1.0):
            outboxes = [engine.run_window(boundary) for engine in engines]
            for index, inbox in enumerate(_route(outboxes, plan)):
                engines[index].absorb(inbox)
        assert len(verdicts) == 1
        assert verdicts[0].valid is False  # ghost-device never joined net-1
        assert engines[0].proxy.messages_sent >= 1
        assert engines[1].proxy.messages_sent >= 1

    def test_proxy_refuses_remote_attach_and_foreign_source(self):
        spec = reference_spec()
        plan = partition(spec, 2)
        engine = ShardEngine(spec, plan, 0, trace=False)
        remote = AggregatorId("net-1")
        with pytest.raises(BackhaulError, match="owned by another shard"):
            engine.proxy.add_aggregator(remote, lambda *a: None)
        with pytest.raises(BackhaulError, match="not local"):
            # net-1 and net-3 both live on shard 1; shard 0 must refuse
            # to originate traffic on their behalf.
            engine.proxy.send(remote, AggregatorId("net-3"), object())

    def test_outbox_messages_carry_conservative_arrival(self):
        spec = reference_spec()
        plan = partition(spec, 2)
        engines = [ShardEngine(spec, plan, i, trace=False) for i in range(2)]
        unit = engines[0].scenario.aggregators["net-0"]
        unit._liaison.request_verification(
            DeviceId("ghost-device"), AggregatorId("net-1"), lambda v: None
        )
        outbox = engines[0].run_window(plan.window_s)
        assert outbox, "verify request should cross shards"
        for message in outbox:
            assert message.deliver_at >= message.sent_at + plan.window_s


class TestCli:
    def _write_spec(self, tmp_path, spec):
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        return str(path)

    def test_shards_flag_matches_serial(self, tmp_path, capsys):
        path = self._write_spec(tmp_path, reference_spec())
        assert main(["--scenario", path, "--until", "4", "--shards", "1"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(["--scenario", path, "--until", "4", "--shards", "2"]) == 0
        sharded = json.loads(capsys.readouterr().out)
        assert serial["ledger_digest"] == SHARD_REFERENCE_SEED7_DIGEST
        assert sharded["ledger_digest"] == SHARD_REFERENCE_SEED7_DIGEST
        assert sharded["counters"] == serial["counters"]
        assert sharded["devices"] == serial["devices"]
        assert sharded["sharding"]["shards"] == 2

    def test_spec_sharding_block_without_flag(self, tmp_path, capsys):
        spec = dataclasses.replace(reference_spec(), sharding=ShardSpec(shards=2))
        path = self._write_spec(tmp_path, spec)
        assert main(["--scenario", path, "--until", "4"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["sharding"]["shards"] == 2
        assert snapshot["ledger_digest"] == SHARD_REFERENCE_SEED7_DIGEST

    def test_bad_shards_value(self, tmp_path):
        path = self._write_spec(tmp_path, reference_spec())
        with pytest.raises(SystemExit):
            main(["--scenario", path, "--shards", "lots"])


class TestShardProperties:
    @given(
        latency_ms=st.integers(min_value=1, max_value=200),
        shards=st.integers(min_value=2, max_value=4),
        requested_ms=st.one_of(st.none(), st.integers(min_value=1, max_value=400)),
    )
    @settings(max_examples=40, deadline=None)
    def test_window_never_exceeds_min_cross_shard_latency(
        self, latency_ms, shards, requested_ms
    ):
        spec = reference_spec(mesh_latency_s=latency_ms / 1000.0)
        requested = None if requested_ms is None else requested_ms / 1000.0
        plan = partition(spec, shards, window_s=requested)
        assert plan.window_s is not None
        assert plan.window_s <= spec.mesh.latency_s
        if requested is not None:
            assert plan.window_s <= requested

    @given(permutation=st.permutations(["net-0", "net-1", "net-2", "net-3"]))
    @settings(max_examples=5, deadline=None)
    def test_random_assignments_preserve_pinned_digest(self, permutation):
        assignment = (tuple(permutation[:2]), tuple(permutation[2:]))
        run = run_sharded(
            reference_spec(), 4.0, shards=2, assignment=assignment, processes=False
        )
        assert run.ledger_digest == SHARD_REFERENCE_SEED7_DIGEST


class TestShardsOneIsSerial:
    def test_wrapped_serial_equals_direct_build(self):
        spec = reference_spec()
        scenario = build(spec)
        scenario.run_until(4.0)
        run = run_sharded(spec, 4.0, shards=1)
        assert run.ledger_digest == scenario.chain.tip_hash
        assert run.counters == scenario.counters.snapshot()
        assert run.snapshot()["devices"] == scenario.snapshot()["devices"]
