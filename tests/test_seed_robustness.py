"""Seed robustness: the reproduced shapes hold across seeds.

Each headline claim is re-checked over several master seeds — results
must not be an artifact of one lucky seed.  Kept to a handful of seeds
so the suite stays fast; the benches sweep further.
"""

import pytest

from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.hw.esp32 import McuState
from repro.workloads.scenarios import build_paper_testbed

SEEDS = (3, 17, 202)


class TestSeedRobustness:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fig5_gap_positive_and_single_digit(self, seed):
        result = run_fig5(seed=seed, duration_s=30.0, warmup_s=12.0)
        assert result.mean_gap_pct > 0.5
        assert result.max_gap_pct < 12.0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_handshake_in_band(self, seed):
        result = run_fig6(seed=seed, phase1_s=12.0, idle_s=4.0, phase2_s=14.0)
        assert 5.0 < result.handshake_s < 7.0
        assert result.buffered_records > 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_honest_run_quiet_and_valid(self, seed):
        scenario = build_paper_testbed(seed=seed)
        scenario.run_until(20.0)
        scenario.chain.validate()
        for unit in scenario.aggregators.values():
            assert unit.verifier.stats.reports_rejected == 0
            stats = unit.verifier.stats
            assert stats.network_anomalies <= 0.05 * max(1, stats.network_checks)


class TestMcuPowerAccounting:
    def test_tx_time_tracks_reports(self):
        scenario = build_paper_testbed(seed=5)
        scenario.run_until(20.0)
        device = scenario.device("device1")
        now = scenario.simulator.now
        tx_time = device.mcu.time_in_state(McuState.WIFI_TX, now)
        rx_time = device.mcu.time_in_state(McuState.WIFI_RX, now)
        idle_time = device.mcu.time_in_state(McuState.IDLE, now)
        # The radio states were actually visited: scanning at join (RX)
        # and a TX dwell per transmitted report.
        assert rx_time > 1.0  # the join scan
        assert idle_time > 10.0
        assert tx_time >= 0.0

    def test_sleep_while_in_transit(self):
        scenario = build_paper_testbed(seed=6, enter_devices=False)
        device = scenario.device("device1")
        scenario.enter_at("device1", "agg1", 0.0)
        scenario.simulator.schedule(10.0, device.leave_network)
        scenario.run_until(20.0)
        sleep_time = device.mcu.time_in_state(
            McuState.LIGHT_SLEEP, scenario.simulator.now
        )
        assert sleep_time == pytest.approx(10.0, abs=0.1)
