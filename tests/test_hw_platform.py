"""Tests for ESP32, RPi, battery/charger and wire models."""

import numpy as np
import pytest

from repro.errors import ConfigError, HardwareError
from repro.hw import Battery, CcCvCharger, Esp32Mcu, McuState, RaspberryPi, WireSegment


class TestEsp32:
    def test_default_state_is_idle(self):
        mcu = Esp32Mcu()
        assert mcu.state is McuState.IDLE
        assert mcu.current_ma() == pytest.approx(20.0)

    def test_state_transitions_change_current(self):
        mcu = Esp32Mcu()
        mcu.set_state(McuState.WIFI_TX, 1.0)
        assert mcu.current_ma() == pytest.approx(180.0)
        mcu.set_state(McuState.DEEP_SLEEP, 2.0)
        assert mcu.current_ma() == pytest.approx(0.01)

    def test_state_ordering_enforced(self):
        mcu = Esp32Mcu()
        mcu.set_state(McuState.ACTIVE, 5.0)
        with pytest.raises(HardwareError):
            mcu.set_state(McuState.IDLE, 4.0)

    def test_time_in_state_accounting(self):
        mcu = Esp32Mcu()
        mcu.set_state(McuState.ACTIVE, 2.0)
        mcu.set_state(McuState.IDLE, 5.0)
        assert mcu.time_in_state(McuState.IDLE, 7.0) == pytest.approx(2.0 + 2.0)
        assert mcu.time_in_state(McuState.ACTIVE, 7.0) == pytest.approx(3.0)

    def test_custom_current_table(self):
        mcu = Esp32Mcu(state_current_ma={McuState.IDLE: 15.0})
        assert mcu.current_ma() == pytest.approx(15.0)
        assert mcu.current_in_state_ma(McuState.ACTIVE) == pytest.approx(45.0)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            Esp32Mcu(supply_voltage_v=0.0)
        with pytest.raises(ConfigError):
            Esp32Mcu(state_current_ma={McuState.IDLE: -1.0})


class TestRaspberryPi:
    def test_latency_positive_and_near_median(self):
        host = RaspberryPi(np.random.default_rng(0))
        samples = [host.processing_latency_s() for _ in range(500)]
        assert all(s > 0 for s in samples)
        assert np.median(samples) == pytest.approx(0.002, rel=0.3)

    def test_zero_jitter_is_deterministic(self):
        host = RaspberryPi(np.random.default_rng(0), jitter_sigma=0.0)
        assert host.processing_latency_s() == host.processing_latency_s() == 0.002

    def test_invalid_params_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigError):
            RaspberryPi(rng, median_proc_latency_s=0.0)
        with pytest.raises(ConfigError):
            RaspberryPi(rng, baseline_current_ma=-1.0)


class TestBattery:
    def test_soc_integration(self):
        battery = Battery(100.0, soc=0.0)
        battery.add_charge(100.0, 1800.0)  # 100 mA for 30 min = 50 mAh
        assert battery.soc == pytest.approx(0.5)

    def test_soc_clamps_at_full(self):
        battery = Battery(10.0, soc=0.9)
        battery.add_charge(100.0, 3600.0)
        assert battery.soc == 1.0

    def test_drain(self):
        battery = Battery(100.0, soc=0.5)
        battery.drain(50.0, 3600.0)
        assert battery.soc == pytest.approx(0.0)

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigError):
            Battery(0.0)
        with pytest.raises(ConfigError):
            Battery(10.0, soc=1.5)
        with pytest.raises(HardwareError):
            Battery(10.0).add_charge(1.0, -1.0)


class TestCcCvCharger:
    def test_cc_phase_constant(self):
        charger = CcCvCharger(150.0, cv_threshold_soc=0.8)
        assert charger.charge_current_ma(0.0) == 150.0
        assert charger.charge_current_ma(0.79) == 150.0

    def test_cv_phase_decays(self):
        charger = CcCvCharger(150.0, cv_threshold_soc=0.8)
        c1 = charger.charge_current_ma(0.85)
        c2 = charger.charge_current_ma(0.95)
        assert 150.0 > c1 > c2 > 0.0

    def test_full_battery_draws_nothing(self):
        charger = CcCvCharger(150.0)
        assert charger.charge_current_ma(1.0) == 0.0

    def test_termination_current_at_full_approach(self):
        charger = CcCvCharger(100.0, termination_ratio=0.05)
        near_full = charger.charge_current_ma(0.999999)
        assert near_full == pytest.approx(5.0, rel=0.05)

    def test_step_advances_battery(self):
        battery = Battery(10.0, soc=0.0)
        charger = CcCvCharger(100.0)
        drawn = charger.step(battery, 360.0)  # 100 mA for 6 min = 10 mAh
        assert drawn == 100.0
        assert battery.soc == pytest.approx(1.0)

    def test_invalid_soc_rejected(self):
        with pytest.raises(HardwareError):
            CcCvCharger(100.0).charge_current_ma(1.2)

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigError):
            CcCvCharger(0.0)
        with pytest.raises(ConfigError):
            CcCvCharger(100.0, cv_threshold_soc=1.0)
        with pytest.raises(ConfigError):
            CcCvCharger(100.0, termination_ratio=0.0)


class TestWireSegment:
    def test_feeder_sees_more_than_device(self):
        segment = WireSegment(resistance_ohms=0.2, leakage_ma=1.0)
        assert segment.feeder_current_ma(100.0, 5.0) > 100.0

    def test_loss_components(self):
        segment = WireSegment(resistance_ohms=0.5, leakage_ma=2.0)
        # I^2 R / V at 100 mA: (0.1^2 * 0.5 / 5) A = 1 mA, plus leakage.
        assert segment.loss_current_ma(100.0, 5.0) == pytest.approx(3.0)

    def test_zero_wire_is_lossless(self):
        segment = WireSegment(resistance_ohms=0.0, leakage_ma=0.0)
        assert segment.feeder_current_ma(123.0, 5.0) == pytest.approx(123.0)

    def test_loss_grows_quadratically_with_current(self):
        segment = WireSegment(resistance_ohms=1.0, leakage_ma=0.0)
        l1 = segment.loss_current_ma(100.0, 5.0)
        l2 = segment.loss_current_ma(200.0, 5.0)
        assert l2 == pytest.approx(4 * l1)

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigError):
            WireSegment(resistance_ohms=-0.1)
        with pytest.raises(ConfigError):
            WireSegment(leakage_ma=-1.0)
        with pytest.raises(ConfigError):
            WireSegment().loss_current_ma(10.0, 0.0)
