"""Integration: a fraudulent device in the full simulation is detected."""

from repro.anomaly import OffsetAttack, ScalingAttack
from repro.workloads.scenarios import build_paper_testbed


def run_with_attack(attack, seed=61, duration=30.0):
    scenario = build_paper_testbed(seed=seed)
    scenario.device("device1").tamper_attack = attack
    scenario.run_until(duration)
    return scenario


class TestInDeviceFraudDetection:
    def test_honest_run_is_quiet(self):
        scenario = run_with_attack(None)
        stats = scenario.aggregator("agg1").verifier.stats
        assert stats.network_anomalies == 0

    def test_scaling_fraud_trips_complementary_measurement(self):
        # Device 1 under-reports by 50 %: per-report screens see a
        # plausible shape, but the feeder comparison catches the gap.
        scenario = run_with_attack(ScalingAttack(0.5))
        stats = scenario.aggregator("agg1").verifier.stats
        assert stats.network_anomalies > 0.5 * stats.network_checks

    def test_offset_fraud_detected(self):
        scenario = run_with_attack(OffsetAttack(40.0))
        stats = scenario.aggregator("agg1").verifier.stats
        assert stats.network_anomalies > 0

    def test_fraud_in_one_network_does_not_flag_the_other(self):
        scenario = run_with_attack(ScalingAttack(0.5))
        honest = scenario.aggregator("agg2").verifier.stats
        assert honest.network_anomalies == 0

    def test_fraud_shrinks_the_bill(self):
        # The attack's motive, verified end-to-end: the ledger under-bills.
        honest = build_paper_testbed(seed=61)
        honest.run_until(20.0)
        honest_energy = honest.chain.total_energy_mwh(
            honest.device("device1").device_id.uid
        )
        attacked = run_with_attack(ScalingAttack(0.5), duration=20.0)
        fraud_energy = attacked.chain.total_energy_mwh(
            attacked.device("device1").device_id.uid
        )
        assert fraud_energy < 0.7 * honest_energy
