"""Tests for repro.ids."""

import pytest

from repro.errors import AddressError
from repro.ids import AggregatorId, DeviceId, NetworkAddress, parse_address


class TestDeviceId:
    def test_uid_is_stable(self):
        assert DeviceId("escooter-1").uid == DeviceId("escooter-1").uid

    def test_uid_differs_by_name(self):
        assert DeviceId("a").uid != DeviceId("b").uid

    def test_uid_is_16_hex(self):
        uid = DeviceId("device1").uid
        assert len(uid) == 16
        int(uid, 16)

    def test_str_is_name(self):
        assert str(DeviceId("device1")) == "device1"

    def test_equality_and_hashability(self):
        assert DeviceId("x") == DeviceId("x")
        assert len({DeviceId("x"), DeviceId("x"), DeviceId("y")}) == 2

    def test_ordering(self):
        assert DeviceId("a") < DeviceId("b")

    @pytest.mark.parametrize("bad", ["", " ", "has space", "-leading", None, 7])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(AddressError):
            DeviceId(bad)

    def test_device_and_aggregator_uids_disjoint(self):
        # Same name, different namespace: must not collide.
        assert DeviceId("x").uid != AggregatorId("x").uid


class TestNetworkAddress:
    def test_str_form(self):
        address = NetworkAddress(AggregatorId("agg1"), 42)
        assert str(address) == "agg1/42"

    def test_parse_roundtrip(self):
        original = NetworkAddress(AggregatorId("agg1"), 7)
        assert parse_address(str(original)) == original

    @pytest.mark.parametrize("host", [-1, 65536, "x", 1.5])
    def test_invalid_host_rejected(self, host):
        with pytest.raises(AddressError):
            NetworkAddress(AggregatorId("agg1"), host)

    @pytest.mark.parametrize("text", ["agg1", "agg1/2/3", "agg1/xyz", "/5"])
    def test_malformed_parse_rejected(self, text):
        with pytest.raises(AddressError):
            parse_address(text)

    def test_same_host_different_aggregator_distinct(self):
        a = NetworkAddress(AggregatorId("agg1"), 1)
        b = NetworkAddress(AggregatorId("agg2"), 1)
        assert a != b
