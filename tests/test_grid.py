"""Tests for the electrical grid substrate."""

import numpy as np
import pytest

from repro.errors import GridError
from repro.grid import FeederMeter, GridNetwork, GridTopology
from repro.grid.loadflow import device_share, topology_true_current_ma
from repro.hw.powerline import WireSegment
from repro.ids import AggregatorId, DeviceId


def lossless_network(name="agg1", host_load=0.0) -> GridNetwork:
    return GridNetwork(
        AggregatorId(name),
        host_load_ma=host_load,
        default_segment=WireSegment(resistance_ohms=0.0, leakage_ma=0.0),
    )


class TestGridNetwork:
    def test_attach_and_measure(self):
        net = lossless_network()
        net.attach(DeviceId("d1"), lambda t: 100.0, 0.0)
        assert net.feeder_current_ma(1.0) == pytest.approx(100.0)

    def test_feeder_sums_devices(self):
        net = lossless_network()
        net.attach(DeviceId("d1"), lambda t: 100.0, 0.0)
        net.attach(DeviceId("d2"), lambda t: 50.0, 0.0)
        assert net.feeder_current_ma(0.0) == pytest.approx(150.0)

    def test_feeder_includes_host_load(self):
        net = lossless_network(host_load=360.0)
        assert net.feeder_current_ma(0.0) == pytest.approx(360.0)

    def test_feeder_includes_wire_losses(self):
        net = GridNetwork(
            AggregatorId("agg1"),
            default_segment=WireSegment(resistance_ohms=0.5, leakage_ma=2.0),
        )
        net.attach(DeviceId("d1"), lambda t: 100.0, 0.0)
        assert net.feeder_current_ma(0.0) == pytest.approx(103.0)

    def test_time_dependent_profile(self):
        net = lossless_network()
        net.attach(DeviceId("d1"), lambda t: 10.0 * t, 0.0)
        assert net.feeder_current_ma(3.0) == pytest.approx(30.0)

    def test_double_attach_rejected(self):
        net = lossless_network()
        net.attach(DeviceId("d1"), lambda t: 1.0, 0.0)
        with pytest.raises(GridError):
            net.attach(DeviceId("d1"), lambda t: 1.0, 1.0)

    def test_detach_removes_load(self):
        net = lossless_network()
        net.attach(DeviceId("d1"), lambda t: 100.0, 0.0)
        net.detach(DeviceId("d1"))
        assert net.feeder_current_ma(0.0) == 0.0

    def test_detach_unknown_rejected(self):
        with pytest.raises(GridError):
            lossless_network().detach(DeviceId("ghost"))

    def test_negative_draw_rejected(self):
        net = lossless_network()
        net.attach(DeviceId("d1"), lambda t: -5.0, 0.0)
        with pytest.raises(GridError):
            net.feeder_current_ma(0.0)

    def test_device_current_lookup(self):
        net = lossless_network()
        net.attach(DeviceId("d1"), lambda t: 42.0, 0.0)
        assert net.device_current_ma(DeviceId("d1"), 0.0) == 42.0
        with pytest.raises(GridError):
            net.device_current_ma(DeviceId("other"), 0.0)


class TestGridTopology:
    def make_topology(self):
        topo = GridTopology()
        topo.add_network(lossless_network("agg1"))
        topo.add_network(lossless_network("agg2"))
        return topo

    def test_single_attachment_invariant(self):
        topo = self.make_topology()
        topo.attach(DeviceId("d1"), AggregatorId("agg1"), lambda t: 1.0, 0.0)
        with pytest.raises(GridError):
            topo.attach(DeviceId("d1"), AggregatorId("agg2"), lambda t: 1.0, 1.0)

    def test_location_tracking(self):
        topo = self.make_topology()
        device = DeviceId("d1")
        assert topo.location_of(device) is None
        topo.attach(device, AggregatorId("agg1"), lambda t: 1.0, 0.0)
        assert topo.location_of(device) == AggregatorId("agg1")
        topo.detach(device)
        assert topo.location_of(device) is None

    def test_move_between_networks(self):
        topo = self.make_topology()
        device = DeviceId("d1")
        topo.attach(device, AggregatorId("agg1"), lambda t: 10.0, 0.0)
        topo.move(device, AggregatorId("agg2"), lambda t: 10.0, 5.0)
        assert topo.location_of(device) == AggregatorId("agg2")
        assert topo.network(AggregatorId("agg1")).feeder_current_ma(5.0) == 0.0
        assert topo.network(AggregatorId("agg2")).feeder_current_ma(5.0) == 10.0

    def test_duplicate_network_rejected(self):
        topo = self.make_topology()
        with pytest.raises(GridError):
            topo.add_network(lossless_network("agg1"))

    def test_unknown_network_rejected(self):
        with pytest.raises(GridError):
            GridTopology().network(AggregatorId("nope"))

    def test_detach_unattached_rejected(self):
        with pytest.raises(GridError):
            self.make_topology().detach(DeviceId("d1"))


class TestFeederMeter:
    def test_truth_vs_measured_close(self):
        net = lossless_network()
        net.attach(DeviceId("d1"), lambda t: 500.0, 0.0)
        meter = FeederMeter(net, np.random.default_rng(0))
        truth = meter.true_current_ma(0.0)
        measured = meter.measure_ma(0.0)
        assert truth == pytest.approx(500.0)
        assert abs(measured - truth) < 3.0  # gain + offset + LSB

    def test_revenue_grade_gain(self):
        net = lossless_network()
        meter = FeederMeter(net, np.random.default_rng(1))
        assert abs(meter.sensor.gain - 1.0) <= 0.002


class TestLoadflow:
    def test_topology_truth_per_network(self):
        topo = GridTopology()
        topo.add_network(lossless_network("agg1"))
        topo.add_network(lossless_network("agg2"))
        topo.attach(DeviceId("d1"), AggregatorId("agg1"), lambda t: 10.0, 0.0)
        truth = topology_true_current_ma(topo, 0.0)
        assert truth[AggregatorId("agg1")] == pytest.approx(10.0)
        assert truth[AggregatorId("agg2")] == pytest.approx(0.0)

    def test_device_share(self):
        net = lossless_network()
        net.attach(DeviceId("d1"), lambda t: 10.0, 0.0)
        net.attach(DeviceId("d2"), lambda t: 20.0, 0.0)
        assert device_share(net, 0.0) == {"d1": 10.0, "d2": 20.0}
