"""Tests for the HTML dashboard export."""

import pytest

from repro.errors import ConfigError
from repro.monitoring import SeriesBank
from repro.monitoring.html import (
    render_dashboard_html,
    render_series_html,
    save_dashboard_html,
)
from repro.workloads.scenarios import build_paper_testbed


def filled_bank():
    bank = SeriesBank()
    for t in range(50):
        bank.record("feeder", t * 0.1, 100.0 + t, "mA")
        bank.record("received:device1", t * 0.1, 50.0, "mA")
    return bank


class TestHtmlRendering:
    def test_page_structure(self):
        page = render_dashboard_html(filled_bank(), title="t<est")
        assert page.startswith("<!DOCTYPE html>")
        assert "t&lt;est" in page  # escaped title
        assert page.count('<div class="panel">') == 2
        assert "polyline" in page

    def test_series_panel_contains_stats(self):
        bank = filled_bank()
        panel = render_series_html(bank["feeder"])
        assert "feeder" in panel
        assert "n=50" in panel
        assert "mA" in panel

    def test_empty_series_panel(self):
        bank = SeriesBank()
        bank.series("empty", "mA")
        panel = render_series_html(bank["empty"])
        assert "n=0" in panel

    def test_empty_bank_page(self):
        page = render_dashboard_html(SeriesBank())
        assert "no series recorded" in page

    def test_points_scale_into_viewbox(self):
        bank = filled_bank()
        panel = render_series_html(bank["feeder"])
        points = panel.split('points="')[1].split('"')[0]
        coords = [tuple(map(float, p.split(","))) for p in points.split()]
        assert all(0 <= x <= 800 and 0 <= y <= 140 for x, y in coords)

    def test_long_series_downsampled(self):
        bank = SeriesBank()
        for t in range(20000):
            bank.record("big", t * 0.01, float(t % 37))
        panel = render_series_html(bank["big"])
        points = panel.split('points="')[1].split('"')[0]
        assert len(points.split()) <= 900

    def test_save_dashboard(self, tmp_path):
        path = save_dashboard_html(filled_bank(), tmp_path / "dash.html")
        assert path.exists()
        assert "<svg" in path.read_text()

    def test_save_requires_html_suffix(self, tmp_path):
        with pytest.raises(ConfigError):
            save_dashboard_html(filled_bank(), tmp_path / "dash.txt")

    def test_export_from_real_run(self, tmp_path):
        scenario = build_paper_testbed(seed=6)
        scenario.run_until(10.0)
        bank = scenario.aggregator("agg1").monitoring
        path = save_dashboard_html(bank, tmp_path / "agg1.html", title="agg1")
        text = path.read_text()
        assert "feeder" in text
        assert "received:device1" in text.replace("&#x27;", "'") or "received" in text
