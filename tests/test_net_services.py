"""Tests for TDMA, time sync and the backhaul mesh."""

import numpy as np
import pytest

from repro.errors import BackhaulError, ConfigError, SlotAllocationError
from repro.hw import Ds3231Rtc
from repro.ids import AggregatorId, DeviceId
from repro.net import BackhaulLink, BackhaulMesh, TdmaSchedule, TimeSyncService
from repro.sim import Simulator


class TestTdma:
    def test_assign_lowest_free_slot(self):
        schedule = TdmaSchedule(slot_count=4)
        assert schedule.assign(DeviceId("a")) == 0
        assert schedule.assign(DeviceId("b")) == 1

    def test_assign_idempotent(self):
        schedule = TdmaSchedule()
        first = schedule.assign(DeviceId("a"))
        assert schedule.assign(DeviceId("a")) == first

    def test_release_recycles_slot(self):
        schedule = TdmaSchedule(slot_count=2)
        schedule.assign(DeviceId("a"))
        schedule.assign(DeviceId("b"))
        schedule.release(DeviceId("a"))
        assert schedule.assign(DeviceId("c")) == 0

    def test_capacity_limit(self):
        # "With limited time-slots ... the number of devices connected to
        # an aggregator is also limited."
        schedule = TdmaSchedule(slot_count=2)
        schedule.assign(DeviceId("a"))
        schedule.assign(DeviceId("b"))
        with pytest.raises(SlotAllocationError):
            schedule.assign(DeviceId("c"))

    def test_free_slots(self):
        schedule = TdmaSchedule(slot_count=3)
        assert schedule.free_slots == 3
        schedule.assign(DeviceId("a"))
        assert schedule.free_slots == 2

    def test_slot_offset_and_duration(self):
        schedule = TdmaSchedule(superframe_s=0.1, slot_count=10)
        schedule.assign(DeviceId("a"))
        schedule.assign(DeviceId("b"))
        assert schedule.slot_duration_s == pytest.approx(0.01)
        assert schedule.slot_offset_s(DeviceId("b")) == pytest.approx(0.01)

    def test_next_slot_time_in_future(self):
        schedule = TdmaSchedule(superframe_s=0.1, slot_count=10)
        schedule.assign(DeviceId("a"))
        schedule.assign(DeviceId("b"))
        t = schedule.next_slot_time(DeviceId("b"), 0.05)
        assert t >= 0.05
        assert (t - 0.01) % 0.1 == pytest.approx(0.0, abs=1e-9)

    def test_release_unknown_rejected(self):
        with pytest.raises(SlotAllocationError):
            TdmaSchedule().release(DeviceId("ghost"))

    def test_offset_unknown_rejected(self):
        with pytest.raises(SlotAllocationError):
            TdmaSchedule().slot_offset_s(DeviceId("ghost"))

    def test_invalid_params_rejected(self):
        with pytest.raises(SlotAllocationError):
            TdmaSchedule(superframe_s=0.0)
        with pytest.raises(SlotAllocationError):
            TdmaSchedule(slot_count=0)


class TestTimeSync:
    def test_sync_bounds_residual_error(self):
        sim = Simulator(seed=0)
        service = TimeSyncService(sim, "sync", interval_s=10.0)
        rtcs = [Ds3231Rtc(np.random.default_rng(i), ppm_max=2.0) for i in range(5)]
        for i, rtc in enumerate(rtcs):
            service.register_clock(f"dev{i}", rtc)
        service.start()
        sim.run_until(100.0)
        # Residual error bounded by interval x ppm.
        for rtc in rtcs:
            assert abs(rtc.error_at(sim.now)) <= 10.0 * 2e-6 + 1e-9
        assert service.rounds == 10

    def test_sync_now_reports_correction(self):
        sim = Simulator(seed=1)
        service = TimeSyncService(sim, "sync")
        rtc = Ds3231Rtc(np.random.default_rng(3))
        service.register_clock("d", rtc)
        sim.run_until(1000.0)
        correction = service.sync_now()
        assert correction > 0
        assert service.sync_now() == pytest.approx(0.0, abs=1e-9)

    def test_unregister_stops_discipline(self):
        sim = Simulator()
        service = TimeSyncService(sim, "sync", interval_s=1.0)
        rtc = Ds3231Rtc(np.random.default_rng(4))
        service.register_clock("d", rtc)
        service.unregister_clock("d")
        service.start()
        sim.run_until(5.0)
        assert service.last_max_correction_s == 0.0

    def test_stop(self):
        sim = Simulator()
        service = TimeSyncService(sim, "sync", interval_s=1.0)
        service.start()
        service.stop()
        sim.run_until(5.0)
        assert service.rounds == 0

    def test_invalid_interval_rejected(self):
        with pytest.raises(ConfigError):
            TimeSyncService(Simulator(), "sync", interval_s=0.0)


class TestBackhaul:
    def make_mesh(self, names=("a", "b", "c")):
        sim = Simulator()
        mesh = BackhaulMesh(sim)
        inboxes = {name: [] for name in names}
        for name in names:
            mesh.add_aggregator(
                AggregatorId(name),
                lambda source, payload, n=name: inboxes[n].append((source, payload)),
            )
        return sim, mesh, inboxes

    def test_direct_link_latency(self):
        sim, mesh, inboxes = self.make_mesh()
        mesh.connect(BackhaulLink(AggregatorId("a"), AggregatorId("b"), 0.001))
        latency = mesh.send(AggregatorId("a"), AggregatorId("b"), "hi")
        assert latency == pytest.approx(0.001)
        sim.run()
        assert inboxes["b"] == [(AggregatorId("a"), "hi")]

    def test_paper_backhaul_delay_is_1ms(self):
        _, mesh, _ = self.make_mesh()
        mesh.connect(BackhaulLink(AggregatorId("a"), AggregatorId("b")))
        assert mesh.latency_s(AggregatorId("a"), AggregatorId("b")) == pytest.approx(0.001)

    def test_multi_hop_routing(self):
        sim, mesh, inboxes = self.make_mesh()
        mesh.connect(BackhaulLink(AggregatorId("a"), AggregatorId("b"), 0.001))
        mesh.connect(BackhaulLink(AggregatorId("b"), AggregatorId("c"), 0.002))
        latency = mesh.latency_s(AggregatorId("a"), AggregatorId("c"))
        assert latency == pytest.approx(0.003 + 0.0002)  # links + per-hop cost
        mesh.send(AggregatorId("a"), AggregatorId("c"), 1)
        sim.run()
        assert inboxes["c"]

    def test_shortest_path_chosen(self):
        _, mesh, _ = self.make_mesh()
        mesh.connect(BackhaulLink(AggregatorId("a"), AggregatorId("b"), 0.010))
        mesh.connect(BackhaulLink(AggregatorId("a"), AggregatorId("c"), 0.001))
        mesh.connect(BackhaulLink(AggregatorId("c"), AggregatorId("b"), 0.001))
        # Via c is cheaper despite the extra hop.
        assert mesh.latency_s(AggregatorId("a"), AggregatorId("b")) < 0.010

    def test_self_latency_zero(self):
        _, mesh, _ = self.make_mesh()
        assert mesh.latency_s(AggregatorId("a"), AggregatorId("a")) == 0.0

    def test_no_path_rejected(self):
        _, mesh, _ = self.make_mesh()
        with pytest.raises(BackhaulError):
            mesh.latency_s(AggregatorId("a"), AggregatorId("b"))

    def test_unknown_destination_rejected(self):
        _, mesh, _ = self.make_mesh()
        with pytest.raises(BackhaulError):
            mesh.send(AggregatorId("a"), AggregatorId("zz"), 1)

    def test_broadcast_fans_out(self):
        sim, mesh, inboxes = self.make_mesh()
        mesh.connect(BackhaulLink(AggregatorId("a"), AggregatorId("b")))
        mesh.connect(BackhaulLink(AggregatorId("a"), AggregatorId("c")))
        count = mesh.broadcast(AggregatorId("a"), "x")
        sim.run()
        assert count == 2
        assert inboxes["b"] and inboxes["c"] and not inboxes["a"]

    def test_duplicate_aggregator_rejected(self):
        _, mesh, _ = self.make_mesh()
        with pytest.raises(BackhaulError):
            mesh.add_aggregator(AggregatorId("a"), lambda s, p: None)

    def test_link_validation(self):
        with pytest.raises(BackhaulError):
            BackhaulLink(AggregatorId("a"), AggregatorId("a"))
        with pytest.raises(BackhaulError):
            BackhaulLink(AggregatorId("a"), AggregatorId("b"), latency_s=0.0)

    def test_link_to_unknown_node_rejected(self):
        _, mesh, _ = self.make_mesh(names=("a",))
        with pytest.raises(BackhaulError):
            mesh.connect(BackhaulLink(AggregatorId("a"), AggregatorId("zz")))
