"""Tests for the experiment harnesses: the paper's claims must hold."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    run_anomaly_ablation,
    run_fig5,
    run_fig6,
    run_handshake_distribution,
    run_sensor_ablation,
    run_storage_ablation,
)
from repro.experiments.report import (
    render_fig5,
    render_fig6,
    render_handshake_stats,
    render_table,
)


@pytest.fixture(scope="module")
def fig5_result():
    return run_fig5(seed=0, duration_s=35.0, warmup_s=12.0)


@pytest.fixture(scope="module")
def fig6_result():
    return run_fig6(seed=0, phase1_s=15.0, idle_s=6.0, phase2_s=18.0)


class TestFig5:
    def test_aggregator_reads_higher_on_average(self, fig5_result):
        # The paper's core Fig. 5 observation.
        assert fig5_result.mean_gap_pct > 0

    def test_gap_in_paper_band(self, fig5_result):
        # Paper: 0.9 - 8.2 %.  Same shape: positive, single-digit.
        assert -0.5 < fig5_result.min_gap_pct
        assert fig5_result.max_gap_pct < 12.0
        assert 1.0 < fig5_result.mean_gap_pct < 6.0

    def test_gap_varies_across_intervals(self, fig5_result):
        assert fig5_result.max_gap_pct - fig5_result.min_gap_pct > 1.0

    def test_both_networks_covered(self, fig5_result):
        networks = {row.network for row in fig5_result.rows}
        assert networks == {"agg1", "agg2"}

    def test_rows_have_both_devices(self, fig5_result):
        for row in fig5_result.rows:
            assert len(row.per_device_ma) == 2
            assert row.device_sum_ma == pytest.approx(
                sum(row.per_device_ma.values())
            )

    def test_validation_errors(self):
        with pytest.raises(ExperimentError):
            run_fig5(duration_s=10.0, warmup_s=10.0)

    def test_render(self, fig5_result):
        text = render_fig5(fig5_result)
        assert "gap_%" in text
        assert "paper: 0.9%" in text


class TestFig6:
    def test_handshake_in_paper_band(self, fig6_result):
        assert 5.0 < fig6_result.handshake_s < 7.0

    def test_buffered_backfill_present(self, fig6_result):
        assert fig6_result.buffered_records > 0

    def test_idle_gap_has_no_consumption(self, fig6_result):
        gap = [
            v
            for t, v in zip(fig6_result.consumption_times, fig6_result.consumption_values)
            if fig6_result.left_network1_at + 0.2 < t < fig6_result.entered_network2_at - 0.2
        ]
        assert gap == []

    def test_consumption_during_handshake_recovered(self, fig6_result):
        # Records with measurement times inside the handshake window
        # exist in the ledger even though connectivity was absent.
        start = fig6_result.entered_network2_at
        end = start + fig6_result.handshake_s
        backfilled = [
            t for t in fig6_result.consumption_times if start + 0.3 < t < end - 0.3
        ]
        assert backfilled

    def test_forwarded_data_reaches_home(self, fig6_result):
        assert fig6_result.first_forwarded_at is not None
        assert fig6_result.first_forwarded_at > fig6_result.entered_network2_at

    def test_arrival_series_nonempty(self, fig6_result):
        assert len(fig6_result.arrival_times) > 100

    def test_render(self, fig6_result):
        text = render_fig6(fig6_result)
        assert "T_handshake" in text

    def test_validation(self):
        with pytest.raises(ExperimentError):
            run_fig6(phase1_s=0.0)


class TestHandshakeDistribution:
    def test_paper_statistics(self):
        stats = run_handshake_distribution(runs=15, base_seed=0)
        # Paper: mean ~6 s, range 5.5 - 6.5 s over 15 runs.
        assert stats.runs == 15
        assert 5.5 < stats.mean_s < 6.5
        assert stats.min_s > 5.0
        assert stats.max_s < 7.0

    def test_runs_vary(self):
        stats = run_handshake_distribution(runs=5, base_seed=3)
        assert stats.max_s > stats.min_s

    def test_render(self):
        stats = run_handshake_distribution(runs=3, base_seed=1)
        assert "T_handshake" in render_handshake_stats(stats)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            run_handshake_distribution(runs=0)


class TestAblations:
    def test_sensor_ablation_attributes_gap(self):
        rows = run_sensor_ablation(
            duration_s=25.0,
            warmup_s=12.0,
            offsets_ma=(0.0, 0.5),
            wires=((0.0, 0.0), (0.1, 2.5)),
        )
        by_key = {
            (r.offset_max_ma, r.wire_resistance_ohms, r.wire_leakage_ma): r
            for r in rows
        }
        ideal = by_key[(0.0, 0.0, 0.0)]
        nominal = by_key[(0.5, 0.1, 2.5)]
        # No error sources -> near-zero gap; nominal -> clearly positive.
        assert abs(ideal.mean_gap_pct) < 0.5
        assert nominal.mean_gap_pct > 1.0

    def test_wire_model_dominates_offset(self):
        rows = run_sensor_ablation(
            duration_s=25.0,
            warmup_s=12.0,
            offsets_ma=(0.5,),
            wires=((0.0, 0.0), (0.1, 2.5)),
        )
        no_wire, with_wire = rows
        assert with_wire.mean_gap_pct > no_wire.mean_gap_pct

    def test_storage_ablation_backfill_always_works(self):
        rows = run_storage_ablation(idle_gaps_s=(2.0, 20.0))
        assert all(r.backfill_worked for r in rows)
        # Longer disconnection, at least as many buffered records.
        assert rows[1].buffered_records >= rows[0].buffered_records

    def test_anomaly_ablation_detects_all_attacks(self):
        rows = run_anomaly_ablation()
        by_attack = {r.attack: r for r in rows}
        # The honest baseline must NOT be flagged...
        assert not by_attack["none"].detected_by_any
        # ...while every attack is caught by at least one detector.
        for name in ("scaling", "offset", "replay", "drop"):
            assert by_attack[name].detected_by_any, name

    def test_anomaly_ablation_residual_catches_scaling(self):
        rows = {r.attack: r for r in run_anomaly_ablation()}
        assert rows["scaling"].residual_detected

    def test_anomaly_ablation_entropy_catches_replay(self):
        rows = {r.attack: r for r in run_anomaly_ablation()}
        assert rows["replay"].entropy_detected


class TestRenderTable:
    def test_alignment_and_header(self):
        text = render_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "---" in lines[1] or "-" in lines[1]
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows aligned
