"""Property-based tests for billing invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.billing import BillingEngine, FlatTariff, SettlementEngine
from repro.chain import Blockchain
from repro.ids import DeviceId

DEVICE = DeviceId("d1")

ledger_records = st.lists(
    st.builds(
        dict,
        sequence=st.integers(min_value=0, max_value=30),
        measured_at=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        energy_mwh=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        roaming=st.booleans(),
    ),
    min_size=0,
    max_size=40,
)


def build_chain(records):
    chain = Blockchain()
    full = [
        {
            "device": DEVICE.name,
            "device_uid": DEVICE.uid,
            "network": "agg1",
            **record,
        }
        for record in records
    ]
    if full:
        chain.append("agg1", 0.0, full)
    return chain


class TestInvoiceProperties:
    @settings(max_examples=60, deadline=None)
    @given(ledger_records)
    def test_totals_equal_sum_of_lines(self, records):
        chain = build_chain(records)
        engine = BillingEngine(chain, FlatTariff(2.0))
        invoice = engine.invoice(DEVICE, (0.0, 100.0))
        assert abs(invoice.total_cost - sum(line.cost for line in invoice.lines)) < 1e-9
        assert abs(
            invoice.total_energy_mwh - sum(line.energy_mwh for line in invoice.lines)
        ) < 1e-9

    @settings(max_examples=60, deadline=None)
    @given(ledger_records)
    def test_home_plus_roaming_partition(self, records):
        chain = build_chain(records)
        engine = BillingEngine(chain, FlatTariff(1.0))
        invoice = engine.invoice(DEVICE, (0.0, 100.0))
        home = sum(l.energy_mwh for l in invoice.lines if not l.roaming)
        roaming = sum(l.energy_mwh for l in invoice.lines if l.roaming)
        assert abs(invoice.home_energy_mwh - home) < 1e-9
        assert abs(invoice.roaming_energy_mwh - roaming) < 1e-9

    @settings(max_examples=60, deadline=None)
    @given(ledger_records)
    def test_duplicate_sequences_never_double_billed(self, records):
        chain = build_chain(records)
        engine = BillingEngine(chain, FlatTariff(1.0))
        invoice = engine.invoice(DEVICE, (0.0, 100.0))
        sequences = [
            int(r["sequence"])
            for r in chain.records_for_device(DEVICE.uid)
            if 0.0 <= float(r["measured_at"]) < 100.0
        ]
        assert len(invoice.lines) == len(set(sequences))

    @settings(max_examples=40, deadline=None)
    @given(
        ledger_records.map(
            # Unique sequences: with a duplicate on both sides of the
            # cut, dedup-by-sequence legitimately counts it once per
            # sub-period — found by hypothesis, documented here.
            lambda rs: list({int(r["sequence"]): r for r in rs}.values())
        ),
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        st.floats(min_value=50.0, max_value=100.0, allow_nan=False),
    )
    def test_splitting_the_period_preserves_energy(self, records, mid_lo, mid_hi):
        # Billing [0, m) + [m, 100) == billing [0, 100) for any cut m —
        # with half-open periods a record on the cut lands in exactly
        # one side, so no exclusion is needed, but keep the guard so
        # the test also documents the old failure mode.
        chain = build_chain(records)
        cut = (mid_lo + mid_hi) / 2.0
        if any(
            abs(float(r["measured_at"]) - cut) < 1e-9
            for r in chain.records_for_device(DEVICE.uid)
        ):
            return
        engine = BillingEngine(chain, FlatTariff(1.0))
        whole = engine.invoice(DEVICE, (0.0, 100.0)).total_energy_mwh
        left = engine.invoice(DEVICE, (0.0, cut)).total_energy_mwh
        right = engine.invoice(DEVICE, (cut, 100.0)).total_energy_mwh
        assert abs((left + right) - whole) < 1e-7


roaming_records = st.lists(
    st.builds(
        dict,
        sequence=st.integers(min_value=0, max_value=1000),
        measured_at=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        energy_mwh=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        network=st.sampled_from(["agg1", "agg2", "agg3"]),
        host=st.sampled_from(["agg1", "agg2", "agg3"]),
    ).filter(lambda r: r["network"] != r["host"]),
    max_size=40,
)


class TestSettlementProperties:
    @settings(max_examples=60, deadline=None)
    @given(roaming_records)
    def test_net_positions_always_sum_to_zero(self, records):
        chain = Blockchain()
        full = [
            {"device": "d", "device_uid": "u", "roaming": True, **r}
            for r in records
        ]
        if full:
            chain.append("agg1", 0.0, full)
        engine = SettlementEngine(chain, FlatTariff(1.0))
        matrix = engine.settle((0.0, 100.0))
        operators = {"agg1", "agg2", "agg3"}
        total = sum(matrix.net_position(op) for op in operators)
        assert abs(total) < 1e-9

    @settings(max_examples=60, deadline=None)
    @given(roaming_records)
    def test_settlement_amount_equals_energy_times_rate(self, records):
        chain = Blockchain()
        full = [
            {"device": "d", "device_uid": "u", "roaming": True, **r}
            for r in records
        ]
        if full:
            chain.append("agg1", 0.0, full)
        engine = SettlementEngine(chain, FlatTariff(3.0))
        matrix = engine.settle((0.0, 100.0))
        for entry in matrix.entries:
            assert abs(entry.amount - 3.0 * entry.energy_mwh) < 1e-6
