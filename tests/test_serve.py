"""Serve mode: spec plumbing, the service facade, and HTTP end to end."""

import dataclasses
import http.client
import json

import pytest

from repro.chain.receipts import receipt_from_dict
from repro.errors import ChainError, CodecError, ConfigError
from repro.ids import DeviceId, parse_address
from repro.protocol.codec import encode_message
from repro.protocol.messages import RegistrationRequest
from repro.runtime import ScenarioSpec, ServeSpec, TransportSpec, build
from repro.serve import AggregatorService, ServeRunner
from repro.transport.serve import ServeHub, ServeLink, ServeTransport
from repro.workloads.scenarios import paper_testbed_spec


def serve_spec(seed=7, step_s=0.5, enter_devices=False, **serve_kwargs):
    spec = paper_testbed_spec(seed=seed, enter_devices=enter_devices)
    return dataclasses.replace(
        spec, serve=ServeSpec(enabled=True, step_s=step_s, **serve_kwargs)
    )


def report_dict(device, sequence, measured_at=None, current_ma=120.0):
    return {
        "type": "consumption_report",
        "device": device,
        "master": "agg1/1",
        "temporary": None,
        "sequence": sequence,
        "measured_at": 0.1 * sequence if measured_at is None else measured_at,
        "interval_s": 0.1,
        "current_ma": current_ma,
        "voltage_v": 5.0,
        "energy_mwh": current_ma * 5.0 * 0.1 / 3600.0,
        "buffered": False,
    }


class TestServeSpec:
    def test_defaults_off_and_round_trip(self):
        spec = paper_testbed_spec()
        assert not spec.serve.enabled
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        assert "serve" in spec.to_dict()

    def test_enabled_round_trip(self):
        spec = serve_spec(step_s=0.25, host="0.0.0.0", port=8123, network="agg2")
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.serve.port == 8123
        assert clone.serve.network == "agg2"

    def test_json_round_trip(self):
        spec = serve_spec()
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_validation(self):
        with pytest.raises(ConfigError):
            ServeSpec(host="")
        with pytest.raises(ConfigError):
            ServeSpec(port=70000)
        with pytest.raises(ConfigError):
            ServeSpec(step_s=0.0)
        with pytest.raises(ConfigError):
            ServeSpec(poll_timeout_s=-1.0)

    def test_unknown_serve_network_rejected(self):
        spec = paper_testbed_spec()
        with pytest.raises(ConfigError):
            dataclasses.replace(spec, serve=ServeSpec(network="nope"))

    def test_old_spec_dict_without_serve_block_loads(self):
        data = paper_testbed_spec().to_dict()
        del data["serve"]
        assert ScenarioSpec.from_dict(data).serve == ServeSpec()


class TestServeTransport:
    def test_spec_kind_builds_serve_transport(self):
        transport = TransportSpec(kind="serve").build(None)
        assert isinstance(transport, ServeTransport)
        assert transport.kind == "serve"

    def test_endpoints_carry_wire_bytes(self):
        spec = paper_testbed_spec(transport=TransportSpec(kind="serve"))
        scenario = build(spec)
        for unit in scenario.aggregators.values():
            assert isinstance(unit.endpoint, ServeHub)
            assert unit.endpoint.wire_bytes

    def test_link_factory_carries_wire_bytes(self):
        transport = ServeTransport()
        link = transport.make_link(build(paper_testbed_spec()).simulator, "d1")
        assert isinstance(link, ServeLink)
        assert link.wire_bytes

    def test_simulated_world_runs_on_serve_backend(self):
        # The full testbed crossing the codec on every hop must still
        # converge: registrations, reports, blocks.
        spec = paper_testbed_spec(seed=3, transport=TransportSpec(kind="serve"))
        scenario = build(spec)
        scenario.run_until(12.0)
        scenario.chain.validate()
        assert scenario.chain.height > 0
        assert sum(
            unit.registry.member_count for unit in scenario.aggregators.values()
        ) == len(scenario.devices)


class TestAggregatorService:
    def test_forces_serve_transport(self):
        service = AggregatorService(paper_testbed_spec(enter_devices=False))
        assert isinstance(service.unit.endpoint, ServeHub)

    def test_register_and_ingest_batch(self):
        service = AggregatorService(serve_spec())
        body = encode_message(RegistrationRequest(DeviceId("ext-1")))
        reply = service.register(body)
        assert reply["status"] == "registered"
        assert parse_address(reply["address"]).aggregator.name == "agg1"
        batch = json.dumps(
            {"reports": [report_dict("ext-1", s) for s in (1, 2, 3)]}
        )
        verdicts = service.ingest(batch)
        assert verdicts["accepted"] == 3
        assert [r["verdict"] for r in verdicts["results"]] == ["ack"] * 3

    def test_register_rejects_wrong_message_type(self):
        service = AggregatorService(serve_spec())
        with pytest.raises(CodecError):
            service.register(json.dumps(report_dict("ext-1", 1)))

    def test_unregistered_report_nacked_with_reason(self):
        service = AggregatorService(serve_spec())
        verdicts = service.ingest(json.dumps([report_dict("ghost", 1)]))
        [result] = verdicts["results"]
        assert result["verdict"] == "nack"
        assert result["reason"] == "not_a_member"

    def test_out_of_range_report_nacked(self):
        service = AggregatorService(serve_spec())
        service.register(encode_message(RegistrationRequest(DeviceId("ext-1"))))
        verdicts = service.ingest(
            json.dumps([report_dict("ext-1", 1, current_ma=5000.0)])
        )
        [result] = verdicts["results"]
        assert result["verdict"] == "nack"

    def test_malformed_batch_entries_get_error_verdicts(self):
        service = AggregatorService(serve_spec())
        service.register(encode_message(RegistrationRequest(DeviceId("ext-1"))))
        batch = json.dumps(
            [report_dict("ext-1", 1), {"type": "martian"}, "not even an object"]
        )
        verdicts = service.ingest(batch)
        kinds = [r["verdict"] for r in verdicts["results"]]
        assert kinds == ["ack", "error", "error"]

    def test_malformed_batch_body_raises(self):
        service = AggregatorService(serve_spec())
        with pytest.raises(CodecError):
            service.ingest(b"not json")
        with pytest.raises(CodecError):
            service.ingest(json.dumps({"reports": "nope"}))

    def test_nacks_surface_on_alert_stream(self):
        service = AggregatorService(serve_spec())
        service.ingest(json.dumps([report_dict("ghost", 1)]))
        feed = service.alerts(since=0, timeout_s=0.0)
        nacks = [a for a in feed["alerts"] if a["kind"] == "nack"]
        assert nacks and nacks[0]["device"] == "ghost"
        assert feed["next"] == len(feed["alerts"])
        # Cursor semantics: nothing new after the cursor.
        again = service.alerts(since=feed["next"], timeout_s=0.0)
        assert again["alerts"] == []

    def test_headers_and_offline_proof(self):
        service = AggregatorService(serve_spec())
        service.register(encode_message(RegistrationRequest(DeviceId("ext-1"))))
        service.ingest(
            json.dumps({"reports": [report_dict("ext-1", s) for s in (1, 2)]})
        )
        service.advance(2.0)  # past a block flush
        headers = service.ledger_headers()
        assert headers["tip_height"] >= 1
        assert headers["headers"]
        proof = service.proof("ext-1", 2)
        receipt = receipt_from_dict(proof)
        assert receipt.verify()  # offline: no chain handle
        with pytest.raises(ChainError):
            service.proof("ext-1", 99)

    def test_headers_validation(self):
        service = AggregatorService(serve_spec())
        with pytest.raises(ConfigError):
            service.ledger_headers(from_height=-1)
        with pytest.raises(ConfigError):
            service.ledger_headers(count=0)

    def test_metrics_exposition(self):
        service = AggregatorService(serve_spec())
        service.register(encode_message(RegistrationRequest(DeviceId("ext-1"))))
        service.ingest(json.dumps([report_dict("ext-1", 1)]))
        text = service.metrics()
        assert "# TYPE repro_counter counter" in text
        assert 'name="serve.reports_ingested"' in text

    def test_healthz_tracks_world(self):
        service = AggregatorService(serve_spec())
        before = service.healthz()
        assert before["status"] == "ok" and before["members"] == 0
        service.register(encode_message(RegistrationRequest(DeviceId("ext-1"))))
        after = service.healthz()
        assert after["members"] == 1
        assert after["external_clients"] == 1
        assert after["sim_time_s"] > before["sim_time_s"]

    def test_simulated_devices_share_the_served_world(self):
        # A served world with the simulated fleet enabled: both report
        # paths (kernel devices and external batches) land in one chain.
        service = AggregatorService(serve_spec(enter_devices=True, step_s=1.0))
        for _ in range(10):
            service.advance()
        assert service.scenario.chain.height > 0
        assert service.unit.registry.member_count >= 2
        service.scenario.chain.validate()


class TestServeHttp:
    @pytest.fixture()
    def service(self):
        return AggregatorService(serve_spec())

    @pytest.fixture()
    def server(self, service):
        with ServeRunner(service) as runner:
            host, port = runner.address
            conn = http.client.HTTPConnection(host, port, timeout=30)
            yield conn
            conn.close()

    def _json(self, conn, method, path, body=None):
        conn.request(method, path, body)
        response = conn.getresponse()
        return response.status, json.loads(response.read())

    def test_end_to_end_over_a_real_socket(self, server):
        status, health = self._json(server, "GET", "/healthz")
        assert (status, health["status"]) == (200, "ok")

        body = encode_message(RegistrationRequest(DeviceId("ext-1")))
        status, reply = self._json(server, "POST", "/register", body)
        assert (status, reply["status"]) == (200, "registered")

        batch = json.dumps({"reports": [report_dict("ext-1", s) for s in (1, 2, 3)]})
        status, verdicts = self._json(server, "POST", "/reports", batch.encode())
        assert status == 200 and verdicts["accepted"] == 3

        status, headers = self._json(server, "GET", "/ledger/headers")
        assert status == 200 and headers["tip_height"] >= 1

        status, proof = self._json(server, "GET", "/proofs/ext-1/3")
        assert status == 200
        assert receipt_from_dict(proof).verify()

    def test_metrics_parse_including_non_finite(self, service, server):
        # Push a genuinely non-finite sample into the served world's
        # monitoring bank, then require valid exposition text end to
        # end: every sample line parses the Prometheus way.
        import math

        service.unit.monitoring.record("residual_ratio", 0.0, math.inf)
        server.request("GET", "/metrics")
        response = server.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type").startswith("text/plain")
        text = response.read().decode()
        assert 'name="agg1.residual_ratio"} +Inf' in text
        for line in text.splitlines():
            if line.startswith("#") or not line.strip():
                continue
            value = line.rsplit(" ", 1)[1]
            assert value in ("+Inf", "-Inf", "NaN") or math.isfinite(float(value))

    def test_error_mapping(self, server):
        status, body = self._json(server, "POST", "/register", b"not a message")
        assert status == 400 and "error" in body
        status, body = self._json(server, "GET", "/proofs/ghost/1")
        assert status == 404
        status, body = self._json(server, "GET", "/nowhere")
        assert status == 404
        status, body = self._json(server, "GET", "/register")
        assert status == 405
        status, body = self._json(server, "GET", "/ledger/headers?count=0")
        assert status == 400
        status, body = self._json(server, "GET", "/ledger/headers?count=zap")
        assert status == 400

    def test_alerts_long_poll_times_out_empty(self, server):
        status, feed = self._json(server, "GET", "/alerts?since=0&timeout_s=0.05")
        assert status == 200
        assert feed == {"alerts": [], "next": 0}

    def test_clean_shutdown_releases_port(self):
        service = AggregatorService(serve_spec())
        runner = ServeRunner(service).start()
        host, port = runner.address
        runner.stop()
        # The socket is closed: a fresh connection must be refused.
        with pytest.raises(OSError):
            conn = http.client.HTTPConnection(host, port, timeout=1)
            conn.request("GET", "/healthz")
            conn.getresponse()
