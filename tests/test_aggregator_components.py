"""Tests for membership, aggregation, verification, ledger writer, roaming."""

import pytest

from repro.aggregator import (
    LedgerWriter,
    MembershipKind,
    MembershipRegistry,
    ReportAggregator,
    ReportVerifier,
    VerificationPolicy,
)
from repro.aggregator.roaming import RoamingLiaison
from repro.chain import Blockchain
from repro.errors import ChainError, MembershipError, ProtocolError
from repro.ids import AggregatorId, DeviceId, NetworkAddress
from repro.net import BackhaulLink, BackhaulMesh, TdmaSchedule
from repro.protocol.messages import (
    ConsumptionReport,
    MembershipVerifyRequest,
    MembershipVerifyResponse,
)
from repro.sim import Simulator

AGG1 = AggregatorId("agg1")
AGG2 = AggregatorId("agg2")


def make_registry(slot_count=4, aggregator=AGG1):
    return MembershipRegistry(aggregator, TdmaSchedule(slot_count=slot_count))


def make_report(device="d1", seq=0, current=50.0, measured_at=1.0):
    return ConsumptionReport(
        device_id=DeviceId(device),
        master=NetworkAddress(AGG1, 1),
        temporary=None,
        sequence=seq,
        measured_at=measured_at,
        interval_s=0.1,
        current_ma=current,
        voltage_v=3.3,
        energy_mwh=current * 3.3 * 0.1 / 3600.0,
    )


class TestMembershipRegistry:
    def test_master_registration_allocates_address_and_slot(self):
        registry = make_registry()
        member = registry.register_master(DeviceId("d1"), 1.0)
        assert member.kind is MembershipKind.MASTER
        assert member.address.aggregator == AGG1
        assert registry.is_master_member(DeviceId("d1"))

    def test_master_registration_idempotent(self):
        registry = make_registry()
        first = registry.register_master(DeviceId("d1"), 1.0)
        second = registry.register_master(DeviceId("d1"), 2.0)
        assert first is second
        assert registry.member_count == 1

    def test_addresses_unique(self):
        registry = make_registry()
        addresses = {
            registry.register_master(DeviceId(f"d{i}"), 0.0).address.host
            for i in range(4)
        }
        assert len(addresses) == 4

    def test_temporary_registration(self):
        registry = make_registry(aggregator=AGG2)
        master_addr = NetworkAddress(AGG1, 1)
        member = registry.register_temporary(DeviceId("d1"), master_addr, 5.0)
        assert member.kind is MembershipKind.TEMPORARY
        assert member.master_address == master_addr
        assert not registry.is_master_member(DeviceId("d1"))

    def test_temporary_claiming_self_rejected(self):
        registry = make_registry()
        with pytest.raises(MembershipError):
            registry.register_temporary(DeviceId("d1"), NetworkAddress(AGG1, 1), 0.0)

    def test_kind_conflicts_rejected(self):
        registry = make_registry(aggregator=AGG2)
        registry.register_temporary(DeviceId("d1"), NetworkAddress(AGG1, 1), 0.0)
        with pytest.raises(MembershipError):
            registry.register_master(DeviceId("d1"), 1.0)

    def test_remove_releases_slot(self):
        registry = make_registry(slot_count=1)
        registry.register_master(DeviceId("d1"), 0.0)
        registry.remove(DeviceId("d1"))
        registry.register_master(DeviceId("d2"), 1.0)  # slot reusable

    def test_remove_unknown_rejected(self):
        with pytest.raises(MembershipError):
            make_registry().remove(DeviceId("ghost"))

    def test_touch_updates_activity(self):
        registry = make_registry()
        registry.register_master(DeviceId("d1"), 0.0)
        registry.touch(DeviceId("d1"), 9.0)
        assert registry.get(DeviceId("d1")).last_report_at == 9.0

    def test_touch_unknown_rejected(self):
        with pytest.raises(MembershipError):
            make_registry().touch(DeviceId("ghost"), 1.0)

    def test_expire_temporaries_only(self):
        registry = make_registry(aggregator=AGG2)
        registry.register_master(DeviceId("stay"), 0.0)
        registry.register_temporary(DeviceId("roamer"), NetworkAddress(AGG1, 1), 0.0)
        expired = registry.expire_temporaries(now=10.0, timeout_s=2.0)
        assert [m.device_id.name for m in expired] == ["roamer"]
        assert registry.get(DeviceId("stay")) is not None
        assert registry.get(DeviceId("roamer")) is None

    def test_active_temporary_not_expired(self):
        registry = make_registry(aggregator=AGG2)
        registry.register_temporary(DeviceId("roamer"), NetworkAddress(AGG1, 1), 0.0)
        registry.touch(DeviceId("roamer"), 9.5)
        assert registry.expire_temporaries(now=10.0, timeout_s=2.0) == []

    def test_members_filter(self):
        registry = make_registry(aggregator=AGG2)
        registry.register_master(DeviceId("m"), 0.0)
        registry.register_temporary(DeviceId("t"), NetworkAddress(AGG1, 1), 0.0)
        assert len(registry.members()) == 2
        assert len(registry.members(MembershipKind.MASTER)) == 1
        assert len(registry.members(MembershipKind.TEMPORARY)) == 1


class TestReportAggregator:
    def test_windows_align_reports_and_feeder(self):
        agg = ReportAggregator(window_s=0.1)
        agg.add_report(DeviceId("d1"), 0.51, 10.0)
        agg.add_report(DeviceId("d2"), 0.55, 20.0)
        agg.add_feeder_sample(0.58, 33.0)
        window = agg.window_at(0.51)
        assert window.reported_sum_ma == pytest.approx(30.0)
        assert window.feeder_ma == 33.0
        assert window.complete

    def test_duplicate_report_overwrites(self):
        agg = ReportAggregator(window_s=0.1)
        agg.add_report(DeviceId("d1"), 0.55, 10.0)
        agg.add_report(DeviceId("d1"), 0.57, 12.0)
        assert agg.window_at(0.55).reported_sum_ma == pytest.approx(12.0)

    def test_latest_complete(self):
        agg = ReportAggregator(window_s=0.1)
        agg.add_report(DeviceId("d1"), 0.1, 1.0)
        agg.add_feeder_sample(0.1, 1.0)
        agg.add_report(DeviceId("d1"), 0.2, 2.0)
        agg.add_feeder_sample(0.2, 2.0)
        agg.add_report(DeviceId("d1"), 0.3, 3.0)  # no feeder yet
        assert agg.latest_complete().start == pytest.approx(0.2)

    def test_history_eviction(self):
        agg = ReportAggregator(window_s=0.1, keep_windows=3)
        for i in range(6):
            agg.add_feeder_sample(i * 0.1, 1.0)
        assert agg.window_at(0.0) is None
        assert agg.window_at(0.5) is not None

    def test_complete_windows_sorted(self):
        agg = ReportAggregator(window_s=1.0)
        for t in (3.0, 1.0, 2.0):
            agg.add_report(DeviceId("d1"), t, t)
            agg.add_feeder_sample(t, t)
        starts = [w.start for w in agg.complete_windows()]
        assert starts == sorted(starts)


class TestReportVerifier:
    def test_honest_reports_pass(self):
        verifier = ReportVerifier()
        for i in range(100):
            verdict = verifier.screen_report(make_report(seq=i, current=50.0 + i % 3))
            assert not verdict.anomalous
        assert verifier.stats.reports_rejected == 0

    def test_range_violation_rejected(self):
        verifier = ReportVerifier()
        verdict = verifier.screen_report(make_report(current=500.0))
        assert verdict.anomalous
        assert verifier.stats.reports_rejected == 1

    def test_gross_jump_rejected_by_history(self):
        verifier = ReportVerifier(VerificationPolicy(history_threshold=3.0))
        for i in range(40):
            verifier.screen_report(make_report(seq=i, current=20.0))
        verdict = verifier.screen_report(make_report(seq=99, current=300.0))
        assert verdict.anomalous

    def test_history_screen_disabled(self):
        verifier = ReportVerifier(VerificationPolicy(use_history_screen=False))
        for i in range(40):
            verifier.screen_report(make_report(seq=i, current=20.0))
        assert not verifier.screen_report(make_report(seq=99, current=300.0)).anomalous

    def test_histories_are_per_device(self):
        verifier = ReportVerifier(VerificationPolicy(history_threshold=3.0))
        for i in range(40):
            verifier.screen_report(make_report("d1", seq=i, current=20.0))
        # d2 has no history; its first big value passes the history screen.
        assert not verifier.screen_report(make_report("d2", seq=0, current=300.0)).anomalous

    def test_network_check_accepts_expected_loss(self):
        verifier = ReportVerifier(
            VerificationPolicy(expected_loss_fraction=0.04, residual_tolerance=0.08)
        )
        assert not verifier.check_network(100.0, 104.0).anomalous

    def test_network_check_flags_underreport(self):
        verifier = ReportVerifier()
        verdict = verifier.check_network(50.0, 104.0)
        assert verdict.anomalous
        assert verifier.stats.network_anomalies == 1

    def test_network_check_flags_dead_feeder_reports(self):
        verifier = ReportVerifier()
        assert verifier.check_network(50.0, 0.0).anomalous
        assert not verifier.check_network(0.0, 0.0).anomalous


class TestLedgerWriter:
    def test_stage_and_flush(self):
        chain = Blockchain()
        writer = LedgerWriter(chain, "agg1")
        writer.stage({"v": 1})
        writer.stage({"v": 2})
        blocks = writer.flush(5.0)
        assert len(blocks) == 1
        assert blocks[0].header.record_count == 2
        assert writer.pending == 0
        assert chain.height == 1

    def test_empty_flush_writes_nothing(self):
        chain = Blockchain()
        writer = LedgerWriter(chain, "agg1")
        assert writer.flush(1.0) == []
        assert chain.height == 0

    def test_oversize_queue_splits_blocks(self):
        chain = Blockchain()
        writer = LedgerWriter(chain, "agg1", max_records_per_block=10)
        for i in range(25):
            writer.stage({"v": i})
        blocks = writer.flush(1.0)
        assert [b.header.record_count for b in blocks] == [10, 10, 5]
        chain.validate()

    def test_counters(self):
        chain = Blockchain()
        writer = LedgerWriter(chain, "agg1")
        writer.stage({})
        writer.flush(1.0)
        writer.stage({})
        writer.flush(2.0)
        assert writer.blocks_written == 2
        assert writer.records_written == 2

    def test_unauthorized_writer_fails(self):
        chain = Blockchain(authorized={"other"})
        writer = LedgerWriter(chain, "agg1")
        writer.stage({})
        with pytest.raises(ChainError):
            writer.flush(1.0)

    def test_invalid_config_rejected(self):
        with pytest.raises(ChainError):
            LedgerWriter(Blockchain(), "agg1", max_records_per_block=0)


class TestRoamingLiaison:
    def make_pair(self):
        sim = Simulator()
        mesh = BackhaulMesh(sim)
        host = RoamingLiaison(AGG2, mesh)
        master = RoamingLiaison(AGG1, mesh)
        inbox = {"host": [], "master": []}
        mesh.add_aggregator(AGG2, lambda s, p: inbox["host"].append(p))
        mesh.add_aggregator(AGG1, lambda s, p: inbox["master"].append(p))
        mesh.connect(BackhaulLink(AGG1, AGG2, 0.001))
        return sim, host, master, inbox

    def test_verification_round_trip(self):
        sim, host, master, inbox = self.make_pair()
        verdicts = []
        host.request_verification(DeviceId("d1"), AGG1, verdicts.append)
        sim.run()
        request = inbox["master"][0]
        assert isinstance(request, MembershipVerifyRequest)
        master.answer_verification(request, is_member=True)
        sim.run()
        response = inbox["host"][0]
        host.handle_verify_response(response)
        assert verdicts[0].valid

    def test_duplicate_request_keeps_single_pending(self):
        sim, host, _, _ = self.make_pair()
        host.request_verification(DeviceId("d1"), AGG1, lambda r: None)
        host.request_verification(DeviceId("d1"), AGG1, lambda r: None)
        assert host.pending_verify_count == 1
        assert host.stats.verify_requests_sent == 1

    def test_unsolicited_response_rejected(self):
        _, host, _, _ = self.make_pair()
        response = MembershipVerifyResponse(DeviceId("d1"), AGG1, True)
        with pytest.raises(ProtocolError):
            host.handle_verify_response(response)

    def test_answer_for_wrong_master_rejected(self):
        _, _, master, _ = self.make_pair()
        request = MembershipVerifyRequest(DeviceId("d1"), AGG2, AGG1)
        with pytest.raises(ProtocolError):
            master.answer_verification(request, True)

    def test_forward_report_counts(self):
        sim, host, _, inbox = self.make_pair()
        host.forward_report(make_report(), AGG1)
        sim.run()
        assert host.stats.reports_forwarded == 1
        assert len(inbox["master"]) == 1

    def make_silent_master_host(self, expired_cap=2):
        """A host whose verifies always expire (the master never answers)."""
        from repro.faults.retry import RetryPolicy

        sim = Simulator()
        mesh = BackhaulMesh(sim)
        host = RoamingLiaison(
            AGG2,
            mesh,
            retry=RetryPolicy(
                timeout_s=0.1, base_backoff_s=0.1, max_attempts=1, jitter=0.0
            ),
            expired_cap=expired_cap,
        )
        mesh.add_aggregator(AGG2, lambda s, p: None)
        mesh.add_aggregator(AGG1, lambda s, p: None)
        mesh.connect(BackhaulLink(AGG1, AGG2, 0.001))
        return sim, host

    def test_expired_verifies_capped_with_fifo_eviction(self):
        # Pre-fix the expired set grew one entry per device forever.
        sim, host = self.make_silent_master_host(expired_cap=2)
        for name in ("d1", "d2", "d3"):
            host.request_verification(DeviceId(name), AGG1, lambda r: None)
        sim.run()
        assert host.stats.verify_timeouts == 3
        assert host.stats.expired_evictions == 1
        # d1's entry was evicted: its late verdict is unsolicited now.
        with pytest.raises(ProtocolError):
            host.handle_verify_response(
                MembershipVerifyResponse(DeviceId("d1"), AGG1, True)
            )
        # d2 survived under the cap: its late verdict is absorbed.
        host.handle_verify_response(
            MembershipVerifyResponse(DeviceId("d2"), AGG1, True)
        )
        assert host.stats.verify_responses_late == 1

    def test_reregistration_clears_expired_entry(self):
        sim, host = self.make_silent_master_host(expired_cap=8)
        host.request_verification(DeviceId("d1"), AGG1, lambda r: None)
        sim.run()
        assert host.stats.verify_timeouts == 1
        # The device registers again: the stale expired marker must not
        # linger (pre-fix it did, mis-counting the next late verdict).
        host.request_verification(DeviceId("d1"), AGG1, lambda r: None)
        sim.run()
        assert host.stats.verify_timeouts == 2
        assert host.stats.verify_responses_late == 0
        assert host.stats.expired_evictions == 0
