"""Tests for trace-driven and Markov appliance profiles."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workloads import MarkovApplianceModel, TraceProfile


class TestTraceProfile:
    def make(self, repeat=False):
        return TraceProfile([0.0, 1.0, 2.5], [10.0, 50.0, 20.0], repeat=repeat)

    def test_step_interpolation(self):
        profile = self.make()
        assert profile(0.0) == 10.0
        assert profile(0.99) == 10.0
        assert profile(1.0) == 50.0
        assert profile(2.6) == 20.0

    def test_before_start_zero(self):
        assert self.make()(-1.0) == 0.0

    def test_after_span_zero_without_repeat(self):
        profile = self.make()
        assert profile(100.0) == 0.0

    def test_repeat_loops(self):
        profile = self.make(repeat=True)
        span = profile.span_s
        assert profile(0.5 + span) == profile(0.5)
        assert profile(1.5 + 2 * span) == profile(1.5)

    def test_csv_roundtrip(self):
        profile = self.make()
        text = profile.to_csv()
        reloaded = TraceProfile.from_csv(text)
        for t in (0.0, 0.5, 1.2, 2.7):
            assert reloaded(t) == profile(t)

    def test_file_roundtrip(self, tmp_path):
        profile = self.make()
        path = tmp_path / "trace.csv"
        profile.save(path)
        reloaded = TraceProfile.load(path)
        assert reloaded(1.5) == profile(1.5)

    def test_csv_validation(self):
        with pytest.raises(ConfigError):
            TraceProfile.from_csv("bogus,header\n1,2\n")
        with pytest.raises(ConfigError):
            TraceProfile.from_csv("time_s,current_ma\n0.0,abc\n")

    @pytest.mark.parametrize(
        "times,currents",
        [
            ([], []),
            ([0.0, 1.0], [1.0]),           # length mismatch
            ([0.0, 1.0, 1.0], [1, 2, 3]),  # not strictly increasing
            ([1.0, 2.0], [1, 2]),          # does not start at 0
            ([0.0, 1.0], [1.0, -2.0]),     # negative current
        ],
    )
    def test_constructor_validation(self, times, currents):
        with pytest.raises(ConfigError):
            TraceProfile(times, currents)

    def test_usable_as_device_profile(self):
        from repro.device.stack import DeviceConfig, MeteringDevice
        from repro.ids import DeviceId
        from repro.workloads.scenarios import build_paper_testbed

        scenario = build_paper_testbed(seed=0, enter_devices=False)
        trace = TraceProfile([0.0, 5.0, 10.0], [30.0, 90.0, 15.0], repeat=True)
        device = MeteringDevice(
            scenario.simulator, DeviceId("traced"), DeviceConfig(),
            scenario.grid, scenario.channel, trace,
        )
        scenario.devices["traced"] = device
        scenario.enter_at("traced", "agg1", 0.0)
        scenario.run_until(15.0)
        assert scenario.chain.records_for_device(device.device_id.uid)


class TestMarkovAppliance:
    def make(self, seed=0, **kwargs):
        return MarkovApplianceModel(np.random.default_rng(seed), **kwargs)

    def test_deterministic_per_seed(self):
        a, b = self.make(5), self.make(5)
        assert [a(t) for t in range(200)] == [b(t) for t in range(200)]

    def test_values_are_state_draws(self):
        model = self.make(1)
        values = {model(t * 0.5) for t in range(4000)}
        assert values <= {0.0, 3.0, 60.0, 150.0}
        assert len(values) >= 3  # it actually visits several states

    def test_occupancy_sums_to_one(self):
        model = self.make(2)
        occupancy = model.occupancy(resolution_s=0.5)
        assert sum(occupancy.values()) == pytest.approx(1.0)
        assert occupancy["active"] > 0

    def test_burst_follows_active_only(self):
        # Bursts are entered only from active (default matrix); sampling
        # finely, a burst sample's predecessor state is never 'off'.
        model = self.make(3, mean_dwell_s=(5.0, 3.0, 5.0, 2.0))
        previous = model(0.0)
        for i in range(1, 40000):
            value = model(i * 0.05)
            if value == 150.0 and previous != 150.0:
                assert previous == 60.0
            previous = value

    def test_outside_horizon_off(self):
        model = self.make(0, horizon_s=100.0)
        assert model(101.0) == 0.0
        assert model(-1.0) == 0.0

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigError):
            MarkovApplianceModel(rng, standby_ma=-1.0)
        with pytest.raises(ConfigError):
            MarkovApplianceModel(rng, mean_dwell_s=(0.0, 1, 1, 1))
        with pytest.raises(ConfigError):
            MarkovApplianceModel(rng, horizon_s=0.0)
        with pytest.raises(ConfigError):
            MarkovApplianceModel(rng, transitions=np.ones((4, 4)))
        with pytest.raises(ConfigError):
            MarkovApplianceModel(rng, transitions=np.eye(3))

    def test_occupancy_needs_distinct_draws(self):
        model = self.make(0, standby_ma=60.0, active_ma=60.0)
        with pytest.raises(ConfigError):
            model.occupancy()
