"""Tests for outage recovery and the billing-dispute receipt flow."""

import pytest

from repro.errors import ProtocolError
from repro.ids import DeviceId
from repro.workloads.scenarios import build_paper_testbed


def steady_scenario(seed=71, until=12.0):
    scenario = build_paper_testbed(seed=seed)
    scenario.run_until(until)
    return scenario


class TestCommOutage:
    def test_measurements_buffer_during_outage(self):
        scenario = steady_scenario()
        device = scenario.device("device1")
        buffered_before = device.reports_buffered
        device.drop_connection()
        scenario.run_until(17.0)
        assert device.reports_buffered > buffered_before + 40
        assert device.store.pending > 40

    def test_reconnect_flushes_backlog(self):
        scenario = steady_scenario()
        device = scenario.device("device1")
        device.drop_connection()
        scenario.run_until(17.0)
        pending_at_reconnect = device.store.pending
        device.reconnect()
        scenario.run_until(25.0)
        assert pending_at_reconnect > 0
        assert device.store.pending == 0
        # The outage window is fully present in the ledger.
        records = scenario.chain.records_for_device(device.device_id.uid)
        outage_records = [
            r for r in records if 12.5 < float(r["measured_at"]) < 16.5
        ]
        assert len(outage_records) > 30
        assert all(r["buffered"] for r in outage_records)

    def test_no_nack_storm_on_home_reconnect(self):
        # Reconnecting to the home network needs no re-registration.
        scenario = steady_scenario()
        device = scenario.device("device1")
        agg1 = scenario.aggregator("agg1")
        nacks_before = agg1.nacks_sent
        device.drop_connection()
        scenario.run_until(14.0)
        device.reconnect()
        scenario.run_until(20.0)
        assert agg1.nacks_sent == nacks_before

    def test_guards(self):
        scenario = steady_scenario()
        device = scenario.device("device1")
        with pytest.raises(ProtocolError):
            device.reconnect()  # still connected
        device.drop_connection()
        with pytest.raises(ProtocolError):
            device.drop_connection()  # already down
        scenario_fresh = build_paper_testbed(seed=1, enter_devices=False)
        with pytest.raises(ProtocolError):
            scenario_fresh.device("device1").drop_connection()  # not in a network

    def test_membership_survives_outage(self):
        scenario = steady_scenario()
        device = scenario.device("device1")
        device.drop_connection()
        scenario.run_until(15.0)
        assert scenario.aggregator("agg1").registry.is_master_member(
            DeviceId("device1")
        )


class TestReceiptFlow:
    def test_device_obtains_verified_receipt(self):
        scenario = steady_scenario()
        device = scenario.device("device1")
        # Sequence 10 was sent early in the run and certainly committed.
        sequence = 10
        device.request_receipt(sequence)
        scenario.run_until(13.0)
        receipt = device.receipts.get(sequence)
        assert receipt is not None
        assert receipt.record["sequence"] == sequence
        assert receipt.record["device_uid"] == device.device_id.uid
        # Binding to the live chain also holds.
        assert receipt.verify(scenario.chain)

    def test_unknown_sequence_reported_missing(self):
        scenario = steady_scenario()
        device = scenario.device("device1")
        device.request_receipt(10_000_000)
        scenario.run_until(13.0)
        assert 10_000_000 in device.receipts
        assert device.receipts[10_000_000] is None

    def test_receipt_request_requires_connection(self):
        scenario = steady_scenario()
        device = scenario.device("device1")
        device.drop_connection()
        with pytest.raises(ProtocolError):
            device.request_receipt(1)

    def test_receipt_covers_roaming_record_at_home(self):
        from repro.workloads.mobility import MobilityTrace

        scenario = build_paper_testbed(seed=72, enter_devices=False)
        scenario.schedule_mobility(
            "device1",
            MobilityTrace.single_move(
                home="agg1", destination="agg2",
                enter_home_at=0.0, leave_home_at=12.0, idle_s=4.0,
            ),
        )
        scenario.run_until(30.0)
        device = scenario.device("device1")
        roaming = [
            r for r in scenario.chain.records_for_device(device.device_id.uid)
            if r.get("roaming")
        ]
        assert roaming
        sequence = int(roaming[0]["sequence"])
        # The device is connected at agg2; the receipt is served from the
        # common chain regardless of which aggregator committed it.
        device.request_receipt(sequence)
        scenario.run_until(31.0)
        receipt = device.receipts.get(sequence)
        assert receipt is not None
        assert receipt.verify(scenario.chain)
