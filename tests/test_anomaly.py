"""Tests for anomaly detectors and tamper attack models."""

import math

import pytest

from repro.anomaly import (
    DropAttack,
    EntropyDetector,
    GroundTruthResidualDetector,
    OffsetAttack,
    RangeDetector,
    RelativeVariationDetector,
    ReplayAttack,
    ScalingAttack,
    TamperAttack,
)
from repro.errors import AnomalyError


class TestRangeDetector:
    def test_normal_value_clean(self):
        assert not RangeDetector(400.0).screen(399.0).anomalous

    def test_overrange_flagged(self):
        verdict = RangeDetector(400.0).screen(450.0)
        assert verdict.anomalous
        assert verdict.score == pytest.approx(50.0)

    def test_negative_flagged(self):
        assert RangeDetector().screen(-1.0).anomalous

    def test_invalid_config(self):
        with pytest.raises(AnomalyError):
            RangeDetector(0.0)


class TestResidualDetector:
    def test_expected_loss_tolerated(self):
        detector = GroundTruthResidualDetector(0.04, 0.08)
        assert not detector.screen(100.0, 104.0).anomalous

    def test_underreport_flagged(self):
        detector = GroundTruthResidualDetector(0.04, 0.08)
        verdict = detector.screen(60.0, 104.0)
        assert verdict.anomalous
        assert "under" in verdict.reason

    def test_overreport_flagged(self):
        detector = GroundTruthResidualDetector(0.04, 0.08)
        verdict = detector.screen(150.0, 104.0)
        assert verdict.anomalous
        assert "over" in verdict.reason

    def test_dead_feeder(self):
        detector = GroundTruthResidualDetector()
        assert detector.screen(10.0, 0.0).anomalous
        assert not detector.screen(0.0, 0.0).anomalous

    def test_tolerance_boundary(self):
        detector = GroundTruthResidualDetector(0.0, 0.10)
        assert not detector.screen(90.1, 100.0).anomalous
        assert detector.screen(89.0, 100.0).anomalous

    def test_invalid_config(self):
        with pytest.raises(AnomalyError):
            GroundTruthResidualDetector(expected_loss_fraction=-0.1)
        with pytest.raises(AnomalyError):
            GroundTruthResidualDetector(tolerance_fraction=0.0)


class TestRelativeVariationDetector:
    def test_stable_stream_clean(self):
        detector = RelativeVariationDetector(window=20, threshold=0.5)
        assert not any(detector.screen(50.0 + (i % 3)).anomalous for i in range(100))

    def test_sudden_jump_flagged(self):
        detector = RelativeVariationDetector(window=20, threshold=0.5)
        for _ in range(20):
            detector.screen(50.0)
        assert detector.screen(200.0).anomalous

    def test_needs_history_before_flagging(self):
        detector = RelativeVariationDetector(window=20, threshold=0.5)
        # First few values never flag, whatever they are.
        assert not detector.screen(1.0).anomalous
        assert not detector.screen(1000.0).anomalous

    def test_adapts_to_new_level(self):
        detector = RelativeVariationDetector(window=10, threshold=0.5)
        for _ in range(10):
            detector.screen(50.0)
        for _ in range(20):
            detector.screen(200.0)
        # After the window fills with the new level, it is the new normal.
        assert not detector.screen(200.0).anomalous

    def test_invalid_config(self):
        with pytest.raises(AnomalyError):
            RelativeVariationDetector(window=1)
        with pytest.raises(AnomalyError):
            RelativeVariationDetector(threshold=0.0)


class TestEntropyDetector:
    def test_varied_stream_clean(self):
        detector = EntropyDetector(window=50, min_entropy_bits=0.5)
        verdicts = [detector.screen(float(i % 17) * 10).anomalous for i in range(200)]
        assert not any(verdicts)

    def test_constant_stream_flagged(self):
        detector = EntropyDetector(window=50, min_entropy_bits=0.5)
        flagged = [detector.screen(42.0).anomalous for _ in range(100)]
        assert any(flagged)

    def test_entropy_value_for_two_level_stream(self):
        detector = EntropyDetector(window=100, bins=16)
        for i in range(100):
            detector.screen(10.0 if i % 2 else 90.0)
        assert detector.entropy_bits() == pytest.approx(1.0, abs=0.05)

    def test_entropy_infinite_when_empty(self):
        assert math.isinf(EntropyDetector().entropy_bits())

    def test_invalid_config(self):
        with pytest.raises(AnomalyError):
            EntropyDetector(window=5)
        with pytest.raises(AnomalyError):
            EntropyDetector(bins=1)
        with pytest.raises(AnomalyError):
            EntropyDetector(min_entropy_bits=-0.1)


class TestAttacks:
    def test_identity_attack(self):
        assert TamperAttack().apply(123.0) == 123.0

    def test_scaling_underreports(self):
        attack = ScalingAttack(0.5)
        assert attack.apply(100.0) == 50.0

    def test_offset_clamped_at_zero(self):
        attack = OffsetAttack(30.0)
        assert attack.apply(100.0) == 70.0
        assert attack.apply(10.0) == 0.0

    def test_replay_freezes_value(self):
        attack = ReplayAttack(capture_after=3)
        outputs = [attack.apply(float(i * 10)) for i in range(10)]
        assert outputs[:3] == [0.0, 10.0, 20.0]
        assert all(v == 20.0 for v in outputs[3:])

    def test_drop_periodic_zeroes(self):
        attack = DropAttack(period=3)
        outputs = [attack.apply(100.0) for _ in range(9)]
        assert outputs.count(0.0) == 3

    def test_invalid_attack_params(self):
        with pytest.raises(AnomalyError):
            ScalingAttack(1.5)
        with pytest.raises(AnomalyError):
            OffsetAttack(-1.0)
        with pytest.raises(AnomalyError):
            ReplayAttack(0)
        with pytest.raises(AnomalyError):
            DropAttack(1)

    def test_scaling_beats_history_but_not_residual(self):
        # The threat model of the paper: per-device history looks normal
        # (the shape is unchanged), but the complementary measurement
        # catches the shortfall.
        history = RelativeVariationDetector(window=20, threshold=0.5)
        residual = GroundTruthResidualDetector(0.04, 0.08)
        attack = ScalingAttack(0.5)
        history_hits = 0
        residual_hits = 0
        for i in range(100):
            true = 80.0 + (i % 5)
            reported = attack.apply(true)
            if history.screen(reported).anomalous:
                history_hits += 1
            if residual.screen(reported, true * 1.04).anomalous:
                residual_hits += 1
        assert history_hits == 0
        assert residual_hits == 100
