"""Tests for repro.units."""

import math

import pytest

from repro.errors import ConfigError
from repro.units import (
    a_to_ma,
    charge_mah,
    clamp,
    dbm_to_mw,
    energy_mwh,
    ma_to_a,
    ms_to_s,
    mw_to_dbm,
    mw_to_w,
    percent,
    power_mw,
    ppm_drift,
    relative_error,
    s_to_ms,
    w_to_mw,
)


class TestConversions:
    def test_ms_seconds_roundtrip(self):
        assert s_to_ms(ms_to_s(1234.5)) == pytest.approx(1234.5)

    def test_ma_amp_roundtrip(self):
        assert a_to_ma(ma_to_a(250.0)) == pytest.approx(250.0)

    def test_mw_watt_roundtrip(self):
        assert w_to_mw(mw_to_w(3300.0)) == pytest.approx(3300.0)

    def test_known_values(self):
        assert ms_to_s(100.0) == pytest.approx(0.1)
        assert ma_to_a(1000.0) == pytest.approx(1.0)
        assert mw_to_w(500.0) == pytest.approx(0.5)


class TestPowerEnergy:
    def test_power_ma_times_v_is_mw(self):
        # 100 mA at 3.3 V is 330 mW.
        assert power_mw(100.0, 3.3) == pytest.approx(330.0)

    def test_energy_one_hour(self):
        # 100 mA at 5 V for one hour is 500 mWh.
        assert energy_mwh(100.0, 5.0, 3600.0) == pytest.approx(500.0)

    def test_energy_100ms_window(self):
        # The paper's T_measure: 100 ms windows.
        value = energy_mwh(100.0, 5.0, 0.1)
        assert value == pytest.approx(500.0 * 0.1 / 3600.0)

    def test_energy_zero_duration(self):
        assert energy_mwh(100.0, 5.0, 0.0) == 0.0

    def test_energy_negative_duration_rejected(self):
        with pytest.raises(ConfigError):
            energy_mwh(100.0, 5.0, -1.0)

    def test_charge_one_hour(self):
        assert charge_mah(150.0, 3600.0) == pytest.approx(150.0)

    def test_charge_negative_duration_rejected(self):
        with pytest.raises(ConfigError):
            charge_mah(100.0, -0.1)


class TestDbm:
    def test_zero_dbm_is_one_mw(self):
        assert dbm_to_mw(0.0) == pytest.approx(1.0)

    def test_roundtrip(self):
        assert mw_to_dbm(dbm_to_mw(-70.0)) == pytest.approx(-70.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ConfigError):
            mw_to_dbm(0.0)


class TestMisc:
    def test_ppm_drift_ds3231_hour(self):
        # 2 ppm over an hour is 7.2 ms.
        assert ppm_drift(3600.0, 2.0) == pytest.approx(0.0072)

    def test_relative_error_signs(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)
        assert relative_error(90.0, 100.0) == pytest.approx(-0.1)

    def test_relative_error_zero_truth_rejected(self):
        with pytest.raises(ConfigError):
            relative_error(1.0, 0.0)

    def test_percent(self):
        assert percent(0.082) == pytest.approx(8.2)

    def test_clamp_inside_and_outside(self):
        assert clamp(5.0, 0.0, 10.0) == 5.0
        assert clamp(-1.0, 0.0, 10.0) == 0.0
        assert clamp(11.0, 0.0, 10.0) == 10.0

    def test_clamp_empty_range_rejected(self):
        with pytest.raises(ConfigError):
            clamp(1.0, 10.0, 0.0)

    def test_energy_is_finite_for_normal_inputs(self):
        assert math.isfinite(energy_mwh(400.0, 5.0, 86400.0))
