"""Tests for the composed AggregatorUnit driven by real devices."""

import pytest

from repro.aggregator import AggregatorConfig, MembershipKind
from repro.errors import ConfigError
from repro.ids import AggregatorId, DeviceId
from repro.protocol.device_fsm import DevicePhase
from repro.workloads.scenarios import build_paper_testbed


@pytest.fixture(scope="module")
def steady_world():
    """A paper testbed run to steady state (shared; read-only tests)."""
    scenario = build_paper_testbed(seed=11)
    scenario.run_until(20.0)
    return scenario


class TestRegistration:
    def test_all_devices_become_master_members(self, steady_world):
        agg1 = steady_world.aggregator("agg1")
        agg2 = steady_world.aggregator("agg2")
        assert agg1.registry.is_master_member(DeviceId("device1"))
        assert agg1.registry.is_master_member(DeviceId("device2"))
        assert agg2.registry.is_master_member(DeviceId("device3"))
        assert agg2.registry.is_master_member(DeviceId("device4"))

    def test_devices_reach_reporting_phase(self, steady_world):
        for name in ("device1", "device2", "device3", "device4"):
            assert steady_world.device(name).fsm.phase is DevicePhase.REPORTING

    def test_registration_handshakes_in_paper_band(self, steady_world):
        for name in ("device1", "device2", "device3", "device4"):
            handshake = steady_world.device(name).last_handshake
            assert handshake.duration_s is not None
            assert 5.0 < handshake.duration_s < 7.0

    def test_addresses_scoped_to_home(self, steady_world):
        device = steady_world.device("device1")
        assert device.fsm.master.aggregator == AggregatorId("agg1")


class TestReporting:
    def test_reports_acked(self, steady_world):
        device = steady_world.device("device1")
        assert device.acked_count > 100

    def test_buffered_handshake_data_reaches_ledger(self, steady_world):
        # Consumption starts at t=0 but registration completes near t~6;
        # the early windows must still be in the chain (backfilled).
        records = steady_world.chain.records_for_device(DeviceId("device1").uid)
        earliest = min(float(r["measured_at"]) for r in records)
        assert earliest < 1.0
        assert any(r["buffered"] for r in records)

    def test_ledger_covers_all_devices(self, steady_world):
        for name in ("device1", "device2", "device3", "device4"):
            assert steady_world.chain.records_for_device(DeviceId(name).uid)

    def test_chain_validates(self, steady_world):
        steady_world.chain.validate()

    def test_no_rejections_for_honest_devices(self, steady_world):
        for name in ("agg1", "agg2"):
            assert steady_world.aggregator(name).verifier.stats.reports_rejected == 0

    def test_few_network_anomalies_in_honest_run(self, steady_world):
        for name in ("agg1", "agg2"):
            stats = steady_world.aggregator(name).verifier.stats
            assert stats.network_checks > 50
            assert stats.network_anomalies <= 0.05 * stats.network_checks

    def test_feeder_series_recorded(self, steady_world):
        feeder = steady_world.aggregator("agg1").monitoring["feeder"]
        assert len(feeder) > 150
        assert feeder.mean() > 50.0

    def test_reporting_rate_matches_t_measure(self, steady_world):
        # ~10 reports per second per device after registration (paper).
        device = steady_world.device("device1")
        reporting_time = 20.0 - device.last_handshake.registered_at
        # Buffered backlog is also transmitted; just bound the total rate.
        assert device.reports_sent >= 10 * reporting_time * 0.9


class TestBlockCadence:
    def test_blocks_written_continuously(self, steady_world):
        agg1 = steady_world.aggregator("agg1")
        assert agg1.writer.blocks_written >= 10
        assert agg1.writer.records_written > 200

    def test_block_attribution(self, steady_world):
        creators = {block.header.aggregator for block in steady_world.chain}
        assert creators == {"agg1", "agg2"}


class TestAdministration:
    def test_remove_device(self):
        scenario = build_paper_testbed(seed=3)
        scenario.run_until(10.0)
        agg1 = scenario.aggregator("agg1")
        agg1.remove_device(DeviceId("device1"))
        scenario.run_until(10.5)
        assert agg1.registry.get(DeviceId("device1")) is None
        assert not scenario.device("device1").fsm.has_home

    def test_transfer_membership(self):
        # Transfer-of-ownership happens while the device operates in the
        # new owner's network (it must hear the new master's downlink).
        from repro.workloads.mobility import MobilityTrace

        scenario = build_paper_testbed(seed=4, enter_devices=False)
        scenario.schedule_mobility(
            "device1",
            MobilityTrace.single_move(
                home="agg1", destination="agg2", enter_home_at=0.0,
                leave_home_at=12.0, idle_s=5.0,
            ),
        )
        scenario.run_until(28.0)
        device = scenario.device("device1")
        assert device.fsm.is_roaming
        agg1 = scenario.aggregator("agg1")
        agg2 = scenario.aggregator("agg2")
        agg2.accept_transfer(DeviceId("device1"), AggregatorId("agg1"))
        scenario.run_until(29.0)
        assert device.fsm.master.aggregator == AggregatorId("agg2")
        assert not device.fsm.is_roaming
        assert agg1.registry.get(DeviceId("device1")) is None
        member = agg2.registry.get(DeviceId("device1"))
        assert member.kind is MembershipKind.MASTER

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            AggregatorConfig(t_measure_s=0.0)
        with pytest.raises(ConfigError):
            AggregatorConfig(block_interval_s=-1.0)
        with pytest.raises(ConfigError):
            AggregatorConfig(temp_member_timeout_s=0.0)
        with pytest.raises(ConfigError):
            AggregatorConfig(downlink_latency_s=-0.1)
