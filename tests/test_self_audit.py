"""Tests for the device-side self-audit."""

import pytest

from repro.billing import BillingEngine, FlatTariff
from repro.chain import Block
from repro.device.app import AuditVerdict, SelfAuditor
from repro.errors import BillingError
from repro.ids import DeviceId
from repro.workloads.scenarios import build_paper_testbed


@pytest.fixture()
def world():
    scenario = build_paper_testbed(seed=95)
    scenario.run_until(20.0)
    return scenario


def invoice_for(scenario, name, period=(0.0, 20.0)):
    engine = BillingEngine(scenario.chain, FlatTariff(1.0))
    return engine.invoice(DeviceId(name), period)


class TestSelfAudit:
    def test_honest_world_is_consistent(self, world):
        device = world.device("device1")
        result = SelfAuditor(device).audit(invoice_for(world, "device1"))
        assert result.verdict is AuditVerdict.CONSISTENT
        assert abs(result.relative_gap) < 0.03

    def test_under_billing_detected(self, world):
        # An operator "losing" the device's records under-bills it —
        # good for the customer's wallet, bad for grid accounting; the
        # audit surfaces it either way.
        device = world.device("device1")
        store = world.chain._store
        for height in range(world.chain.height):
            block = store.get(height)
            kept = [
                r for r in block.records if r.get("device_uid") != device.device_id.uid
            ]
            if len(kept) != len(block.records):
                store.tamper(height, Block(block.header, tuple(kept), block.block_hash))
        result = SelfAuditor(device).audit(invoice_for(world, "device1"))
        assert result.verdict is AuditVerdict.UNDER_BILLED

    def test_over_billing_detected(self, world):
        device = world.device("device1")
        store = world.chain._store
        block = store.get(2)
        inflated = [
            dict(r, energy_mwh=float(r.get("energy_mwh", 0.0)) * 50.0)
            if r.get("device_uid") == device.device_id.uid
            else r
            for r in block.records
        ]
        store.tamper(2, Block(block.header, tuple(inflated), block.block_hash))
        result = SelfAuditor(device).audit(invoice_for(world, "device1"))
        assert result.verdict is AuditVerdict.OVER_BILLED

    def test_receipt_spot_check_included(self, world):
        device = world.device("device1")
        device.request_receipt(10)
        device.request_receipt(11)
        world.run_until(21.0)
        result = SelfAuditor(device).audit(invoice_for(world, "device1", (0.0, 21.0)))
        assert result.receipts_checked == 2
        assert result.receipts_ok

    def test_wrong_device_invoice_rejected(self, world):
        device = world.device("device1")
        with pytest.raises(BillingError):
            SelfAuditor(device).audit(invoice_for(world, "device2"))

    def test_invalid_tolerance(self, world):
        with pytest.raises(BillingError):
            SelfAuditor(world.device("device1"), tolerance=0.0)
