"""Tests for the observability layer: spans, metrics, profiler, artifacts."""

import dataclasses
import json
import math

import pytest

from repro.errors import ConfigError
from repro.monitoring.counters import CounterBank
from repro.monitoring.timeseries import SeriesBank
from repro.obs import (
    MetricsRegistry,
    capture,
    collect_scenario,
    merge_artifact_dirs,
    merge_profiles,
    read_bundle,
    validate_artifact_dir,
    write_artifacts,
)
from repro.obs.spans import DISABLED_TRACER, NOOP_SPAN, SpanTracer
from repro.runtime import ObsSpec, build
from repro.workloads.scenarios import paper_testbed_spec


class FakeClock:
    def __init__(self):
        self.now = 0.0


def observed_testbed(seed=7, until=10.0):
    """Build and run the paper testbed with observability forced on."""
    with capture(ObsSpec(enabled=True)) as session:
        scenario = build(paper_testbed_spec(seed=seed))
        scenario.run_until(until)
    return scenario, session


class TestSpanTracer:
    def test_parent_child_nesting(self):
        clock = FakeClock()
        tracer = SpanTracer(clock)
        root = tracer.begin("register", "agg1", device="d1")
        clock.now = 0.5
        child = tracer.begin("verify", "agg1", parent=root)
        clock.now = 1.0
        tracer.finish(child, "ok")
        tracer.finish(root, "ok")
        assert tracer.roots() == [root]
        assert tracer.children(root) == [child]
        assert child.parent_id == root.span_id
        assert child.duration == pytest.approx(0.5)
        assert root.tags == {"device": "d1"}

    def test_finish_is_idempotent_first_wins(self):
        clock = FakeClock()
        tracer = SpanTracer(clock)
        span = tracer.begin("forward", "mesh")
        clock.now = 1.0
        tracer.finish(span, "delivered")
        clock.now = 2.0
        tracer.finish(span, "dropped")  # a duplicated delivery's copy
        assert span.status == "delivered"
        assert span.end == 1.0

    def test_event_is_zero_duration(self):
        tracer = SpanTracer(FakeClock())
        span = tracer.event("transport.send", "d1-link", topic="t")
        assert span.duration == 0.0
        assert span.status == "ok"

    def test_open_span_exports_as_open(self):
        tracer = SpanTracer(FakeClock())
        tracer.begin("handshake", "d1")
        (record,) = tracer.to_dicts()
        assert record["status"] == "open"
        assert record["end"] is None
        assert len(tracer.open_spans()) == 1

    def test_disabled_tracer_records_nothing(self):
        tracer = SpanTracer(None, enabled=False)
        span = tracer.begin("x", "y")
        tracer.finish(span)
        tracer.event("e", "y")
        assert span is NOOP_SPAN
        assert len(tracer) == 0
        assert not tracer.enabled
        assert len(DISABLED_TRACER) == 0

    def test_jsonl_round_trip(self):
        tracer = SpanTracer(FakeClock())
        tracer.finish(tracer.begin("a", "x"), "ok", n=1)
        lines = tracer.to_jsonl().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["name"] == "a" and record["tags"] == {"n": 1}


class TestMetricsRegistry:
    def make_registry(self):
        counters = CounterBank()
        counters.increment("reports_sent", 3)
        series = SeriesBank()
        series.record("feeder", 0.0, 1.5, unit="mA")
        series.record("feeder", 1.0, 2.5)
        registry = MetricsRegistry()
        registry.add_counters(counters)
        registry.add_series(series, prefix="agg1.")
        return registry

    def test_prometheus_text(self):
        text = self.make_registry().to_prometheus()
        assert 'repro_counter{name="reports_sent"} 3' in text
        assert 'repro_series_last{name="agg1.feeder",unit="mA"} 2.5' in text
        assert 'repro_series_samples{name="agg1.feeder"} 2' in text

    def test_jsonl_records(self):
        records = [
            json.loads(line) for line in self.make_registry().to_jsonl().splitlines()
        ]
        kinds = {r["kind"] for r in records}
        assert kinds == {"counter", "series"}
        series = next(r for r in records if r["kind"] == "series")
        assert series["name"] == "agg1.feeder"
        assert series["samples"] == 2
        assert series["last_value"] == 2.5

    def test_non_finite_values_use_exposition_spellings(self):
        # Regression: these printed as Python's "inf"/"nan", which no
        # Prometheus parser accepts.  The exposition format mandates
        # +Inf/-Inf/NaN.
        series = SeriesBank()
        series.record("pos", 0.0, math.inf)
        series.record("neg", 0.0, -math.inf)
        series.record("bad", 0.0, math.nan)
        registry = MetricsRegistry()
        registry.add_series(series)
        text = registry.to_prometheus()
        assert 'repro_series_last{name="pos"} +Inf' in text
        assert 'repro_series_last{name="neg"} -Inf' in text
        assert 'repro_series_last{name="bad"} NaN' in text
        for spelling in ("inf", "nan"):
            for line in text.splitlines():
                assert not line.endswith(spelling), line

    def test_counter_collisions_sum(self):
        a, b = CounterBank(), CounterBank()
        a.increment("x", 1)
        b.increment("x", 2)
        registry = MetricsRegistry()
        registry.add_counters(a)
        registry.add_counters(b)
        assert registry.counter_values() == {"x": 3}


class TestObsSpec:
    def test_defaults_off(self):
        obs = ObsSpec()
        assert not obs.enabled and obs.spans and obs.profile

    def test_dict_round_trip(self):
        obs = ObsSpec(enabled=True, spans=False, profile=True, sample_every=500)
        assert ObsSpec.from_dict(obs.to_dict()) == obs

    def test_scenario_spec_json_round_trip(self):
        spec = paper_testbed_spec(seed=3)
        spec = dataclasses.replace(spec, obs=ObsSpec(enabled=True))
        from repro.runtime import ScenarioSpec

        revived = ScenarioSpec.from_json(spec.to_json())
        assert revived.obs == spec.obs

    def test_sample_every_validated(self):
        with pytest.raises(ConfigError):
            ObsSpec(sample_every=0)


class TestKernelProfiler:
    def test_profile_covers_every_event(self):
        scenario, _ = observed_testbed(until=5.0)
        snapshot = scenario.simulator.profiler.snapshot()
        assert snapshot["enabled"]
        assert snapshot["events"] == scenario.simulator.events_executed > 0
        assert sum(s["count"] for s in snapshot["by_actor"].values()) == snapshot["events"]
        assert (
            sum(s["count"] for s in snapshot["by_event_type"].values())
            == snapshot["events"]
        )

    def test_disabled_by_default(self):
        scenario = build(paper_testbed_spec(seed=7))
        sim = scenario.simulator
        assert sim.profiler is None
        assert not sim.spans.enabled
        # The disabled tracer's methods are the module-level no-ops, so
        # instrumented code pays a C-level call at most.
        from repro.obs.spans import _begin_disabled

        assert sim.spans.begin is _begin_disabled

    def test_observed_run_is_bit_identical_to_plain_run(self):
        plain = build(paper_testbed_spec(seed=7))
        plain.run_until(10.0)
        observed, _ = observed_testbed(seed=7, until=10.0)
        assert observed.chain.tip_hash == plain.chain.tip_hash
        assert observed.simulator.events_executed == plain.simulator.events_executed


class TestSpanInstrumentation:
    def test_paper_testbed_span_taxonomy(self):
        scenario, _ = observed_testbed(until=10.0)
        spans = scenario.simulator.spans
        names = {span.name for span in spans}
        assert {
            "membership.handshake",
            "membership.register",
            "report.conversation",
            "transport.send",
            "transport.deliver",
        } <= names
        assert spans.open_spans() == []
        handshakes = spans.by_name("membership.handshake")
        assert len(handshakes) == len(scenario.devices)
        assert all(s.status == "ok" for s in handshakes)
        reports = spans.by_name("report.conversation")
        assert reports and all(s.status == "accepted" for s in reports)

    def test_roaming_verify_nests_under_parent_span(self):
        from repro.aggregator.roaming import RoamingLiaison
        from repro.ids import AggregatorId, DeviceId
        from repro.net import BackhaulLink, BackhaulMesh
        from repro.sim import Simulator

        agg1, agg2 = AggregatorId("agg1"), AggregatorId("agg2")
        sim = Simulator(spans=True)
        mesh = BackhaulMesh(sim)
        host = RoamingLiaison(agg2, mesh)
        master = RoamingLiaison(agg1, mesh)
        inbox = {"host": [], "master": []}
        mesh.add_aggregator(agg2, lambda s, p: inbox["host"].append(p))
        mesh.add_aggregator(agg1, lambda s, p: inbox["master"].append(p))
        mesh.connect(BackhaulLink(agg1, agg2, 0.001))

        parent = sim.spans.begin("membership.register", "agg2", device="d1")
        host.request_verification(DeviceId("d1"), agg1, lambda r: None, parent_span=parent)
        sim.run()
        master.answer_verification(inbox["master"][0], is_member=True)
        sim.run()
        host.handle_verify_response(inbox["host"][0])
        sim.spans.finish(parent, "ok")

        (verify,) = sim.spans.by_name("roaming.verify")
        assert verify.parent_id == parent.span_id
        assert verify.status == "ok"
        forwards = sim.spans.by_name("backhaul.forward")
        assert len(forwards) == 2  # request out, response back
        assert all(s.status == "delivered" for s in forwards)


class TestArtifacts:
    def test_write_validate_read_round_trip(self, tmp_path):
        scenario, session = observed_testbed(until=5.0)
        paths = session.write(tmp_path / "run")
        assert validate_artifact_dir(tmp_path / "run") == []
        bundle = read_bundle(tmp_path / "run")
        assert bundle.counters == collect_scenario(scenario).counters
        assert len(bundle.spans) == len(scenario.simulator.spans)
        assert bundle.profile["enabled"]
        assert paths["metrics.prom"].read_text().startswith("# HELP")

    def test_disabled_run_still_writes_valid_artifacts(self, tmp_path):
        scenario = build(paper_testbed_spec(seed=7))
        scenario.run_until(2.0)
        scenario.write_obs_artifacts(tmp_path / "plain")
        assert validate_artifact_dir(tmp_path / "plain") == []
        bundle = read_bundle(tmp_path / "plain")
        assert bundle.spans == []
        assert bundle.profile == {"enabled": False}
        assert bundle.counters  # counters exist regardless of obs

    def test_merge_is_deterministic_and_sums(self, tmp_path):
        for index, seed in enumerate((7, 8)):
            _, session = observed_testbed(seed=seed, until=3.0)
            session.write(tmp_path / f"part{index}")
        merge_artifact_dirs(
            [tmp_path / "part0", tmp_path / "part1"], tmp_path / "merged"
        )
        assert validate_artifact_dir(tmp_path / "merged") == []
        merged = read_bundle(tmp_path / "merged")
        part0 = read_bundle(tmp_path / "part0")
        part1 = read_bundle(tmp_path / "part1")
        assert len(merged.spans) == len(part0.spans) + len(part1.spans)
        assert {span["part"] for span in merged.spans} == {0, 1}
        some = next(iter(part0.counters))
        assert merged.counters[some] == part0.counters[some] + part1.counters.get(
            some, 0
        )
        assert all(e["name"].startswith(("part0.", "part1.")) for e in merged.series)
        assert merged.profile["merged"] == 2
        assert (
            merged.profile["events"]
            == part0.profile["events"] + part1.profile["events"]
        )

    def test_merge_profiles_all_disabled(self):
        assert merge_profiles([{"enabled": False}, {"enabled": False}]) == {
            "enabled": False
        }

    def test_validator_flags_corrupt_artifacts(self, tmp_path):
        _, session = observed_testbed(until=2.0)
        session.write(tmp_path)
        (tmp_path / "profile.json").write_text("{}")
        (tmp_path / "spans.jsonl").write_text('{"name": "x"}\n')
        errors = validate_artifact_dir(tmp_path)
        assert any("profile.json" in e and "enabled" in e for e in errors)
        assert any("spans.jsonl" in e for e in errors)

    def test_validator_flags_missing_files(self, tmp_path):
        (tmp_path / "empty").mkdir()
        errors = validate_artifact_dir(tmp_path / "empty")
        assert any("manifest.json" in e for e in errors)


def _obs_sweep_point(seed):
    """Module-level so sweep worker processes can unpickle it."""
    scenario = build(paper_testbed_spec(seed=seed))
    scenario.run_until(3.0)
    return {"events": scenario.simulator.events_executed}


class TestSweepArtifacts:
    # profile.json carries wall-clock timings, which legitimately vary
    # run to run; everything else in the directory must be identical.
    DETERMINISTIC_FILES = ("manifest.json", "spans.jsonl", "metrics.jsonl", "metrics.prom")

    def test_parallel_merge_matches_serial(self, tmp_path):
        from repro.experiments.sweeps import sweep

        points = [{"seed": 7}, {"seed": 8}]
        serial = sweep(_obs_sweep_point, points, workers=1, obs_dir=tmp_path / "w1")
        parallel = sweep(_obs_sweep_point, points, workers=2, obs_dir=tmp_path / "w2")
        assert serial == parallel
        assert validate_artifact_dir(tmp_path / "w1") == []
        assert validate_artifact_dir(tmp_path / "w2") == []
        for name in self.DETERMINISTIC_FILES:
            assert (tmp_path / "w1" / name).read_bytes() == (
                tmp_path / "w2" / name
            ).read_bytes(), name
        manifest = json.loads((tmp_path / "w1" / "manifest.json").read_text())
        assert manifest["merged_from"] == ["point-0000", "point-0001"]


class TestCli:
    def test_scenario_obs_dir(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "--scenario",
                "examples/specs/paper_testbed.json",
                "--until",
                "3",
                "--obs-dir",
                str(tmp_path / "obs"),
            ]
        )
        assert code == 0
        assert validate_artifact_dir(tmp_path / "obs") == []
        spans = (tmp_path / "obs" / "spans.jsonl").read_text().splitlines()
        assert spans  # the run was actually instrumented

    def test_validate_cli_round_trip(self, tmp_path, capsys):
        from repro.obs.validate import main as validate_main

        _, session = observed_testbed(until=2.0)
        session.write(tmp_path)
        assert validate_main([str(tmp_path)]) == 0
        (tmp_path / "profile.json").write_text("{}")
        assert validate_main([str(tmp_path)]) == 1
