"""Tests for scenario helpers and remaining aggregator/protocol paths."""

import pytest

from repro.anomaly.tamper import TamperAttack
from repro.errors import ProtocolError
from repro.grid.topology import GridNetwork
from repro.hw.powerline import WireSegment
from repro.ids import AggregatorId, DeviceId
from repro.protocol.device_fsm import DevicePhase
from repro.workloads.scenarios import build_paper_testbed


class AmplifyAttack(TamperAttack):
    """Over-report beyond the sensor's physical range."""

    name = "amplify"

    def __init__(self, factor: float) -> None:
        self._factor = factor

    def apply(self, reported_ma: float) -> float:
        return reported_ma * self._factor


class TestScenarioHelpers:
    def test_summary_shape(self):
        scenario = build_paper_testbed(seed=51)
        scenario.run_until(10.0)
        summary = scenario.summary()
        assert summary["chain_height"] > 0
        assert set(summary["devices"]) == {"device1", "device2", "device3", "device4"}
        assert summary["devices"]["device1"]["phase"] == "reporting"
        assert summary["aggregators"]["agg1"]["members"] == 2
        assert summary["total_energy_mwh"] > 0

    def test_export_monitoring_writes_csvs(self, tmp_path):
        scenario = build_paper_testbed(seed=52)
        scenario.run_until(8.0)
        paths = scenario.export_monitoring(tmp_path)
        assert paths
        feeder_files = [p for p in paths if "feeder" in p.name]
        assert len(feeder_files) == 2  # one per aggregator
        text = feeder_files[0].read_text()
        assert text.startswith("time_s,")
        assert len(text.splitlines()) > 50


class TestAnomalousReportPath:
    def test_overrange_reports_nacked_and_excluded(self):
        scenario = build_paper_testbed(seed=53)
        device = scenario.device("device1")
        scenario.run_until(10.0)
        # From t=10 the device reports 10x its real draw: > 400 mA.
        device.tamper_attack = AmplifyAttack(10.0)
        scenario.run_until(20.0)
        agg1 = scenario.aggregator("agg1")
        stats = agg1.verifier.stats
        assert stats.reports_rejected > 50
        assert "exceeds sensor range" in " ".join(stats.rejections_by_reason)
        # Rejected reports never reach the ledger.
        records = scenario.chain.records_for_device(device.device_id.uid)
        overrange = [r for r in records if float(r["current_ma"]) > 400.0]
        assert overrange == []
        # The device keeps its membership and reporting phase throughout.
        assert device.fsm.phase is DevicePhase.REPORTING
        assert agg1.registry.is_master_member(device.device_id)

    def test_anomalous_nack_does_not_rebuffer(self):
        scenario = build_paper_testbed(seed=54)
        device = scenario.device("device1")
        scenario.run_until(10.0)
        device.tamper_attack = AmplifyAttack(10.0)
        scenario.run_until(14.0)
        # ANOMALOUS Nacks (unlike NOT_A_MEMBER) drop the data: buffering
        # fraud for retransmission would be pointless.
        assert device.store.pending < 5


class TestCustomWireSegments:
    def test_per_device_segment_overrides_default(self):
        network = GridNetwork(
            AggregatorId("agg1"),
            default_segment=WireSegment(resistance_ohms=0.0, leakage_ma=0.0),
        )
        lossy = WireSegment(resistance_ohms=0.0, leakage_ma=10.0)
        network.attach(DeviceId("clean"), lambda t: 100.0, 0.0)
        network.attach(DeviceId("lossy"), lambda t: 100.0, 0.0, segment=lossy)
        # Only the lossy run adds leakage.
        assert network.feeder_current_ma(0.0) == pytest.approx(210.0)


class TestBackhaulPayloadGuard:
    def test_unexpected_backhaul_payload_rejected(self):
        scenario = build_paper_testbed(seed=55, enter_devices=False)
        agg1 = scenario.aggregator("agg1")
        with pytest.raises(ProtocolError):
            agg1._on_backhaul(AggregatorId("agg2"), {"not": "a message"})

    def test_wrong_message_type_on_topics_rejected(self):
        from repro.protocol.codec import encode_message
        from repro.protocol.messages import Ack

        scenario = build_paper_testbed(seed=56, enter_devices=False)
        agg1 = scenario.aggregator("agg1")
        payload = encode_message(Ack(DeviceId("device1"), 1))
        with pytest.raises(ProtocolError):
            agg1._on_report("meter/device1/report", payload)
        with pytest.raises(ProtocolError):
            agg1._on_register("meter/device1/register", payload)
        with pytest.raises(ProtocolError):
            agg1._on_receipt_request("meter/device1/receipt", payload)
