"""Tests for the pluggable transport layer (:mod:`repro.transport`).

Covers the seam three ways:

* contract tests parametrized over both backends (pub/sub routing,
  QoS-1 retransmission exhaustion during an outage, endpoint downtime),
* :func:`topic_matches` edge cases shared by every backend,
* the layering rule itself: no protocol module imports the MQTT/Wi-Fi
  backend modules directly (enforced over the AST, so a regression
  fails in CI rather than in review).
"""

import ast
from pathlib import Path

import pytest

from repro.errors import ConfigError, NetworkError
from repro.faults.injectors import LinkFaultInjector
from repro.net.channel import ChannelParams, WirelessChannel
from repro.runtime.spec import ScenarioSpec, TransportSpec
from repro.sim.kernel import Simulator
from repro.transport import (
    DirectTransport,
    MqttTransport,
    QoS,
    Transport,
    topic_matches,
)
from repro.workloads.scenarios import paper_testbed_spec

BACKENDS = ("mqtt", "direct")

SRC_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"
PROTOCOL_PACKAGES = ("device", "aggregator", "decentral")
BANNED_MODULES = ("repro.net.mqtt", "repro.net.wifi")


def make_transport(kind: str, sim: Simulator) -> Transport:
    if kind == "mqtt":
        channel = WirelessChannel(
            ChannelParams(shadowing_sigma_db=0.0), sim.rng.stream("channel")
        )
        return MqttTransport(channel)
    return DirectTransport()


def make_world(kind: str, seed: int = 0):
    sim = Simulator(seed=seed)
    transport = make_transport(kind, sim)
    endpoint = transport.make_endpoint(sim, "agg")
    link = transport.make_link(sim, "dev")
    return sim, transport, endpoint, link


def connect(sim, endpoint, link, rssi=-50.0):
    link.connect(endpoint, rssi)
    sim.run_until(sim.now + 2.0)


# -- layering rule ------------------------------------------------------


def _imported_modules(path: Path) -> set[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    modules: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            modules.update(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom) and node.module is not None:
            modules.add(node.module)
    return modules


class TestLayering:
    def test_protocol_layers_never_import_backend_modules(self):
        """device/, aggregator/, decentral/ speak only the transport API."""
        offenders = []
        for package in PROTOCOL_PACKAGES:
            for path in sorted((SRC_ROOT / package).rglob("*.py")):
                bad = _imported_modules(path).intersection(BANNED_MODULES)
                if bad:
                    offenders.append((str(path.relative_to(SRC_ROOT)), sorted(bad)))
        assert offenders == []

    def test_packages_scanned_exist(self):
        # Guard against the scan silently passing on a renamed tree.
        for package in PROTOCOL_PACKAGES:
            assert (SRC_ROOT / package).is_dir()


# -- topic matching edge cases ------------------------------------------


class TestTopicMatchingEdgeCases:
    @pytest.mark.parametrize(
        "pattern,topic",
        [("a/#/b", "a/x/b"), ("#/a", "q/a"), ("x/#/y/#", "x/q/y/z")],
    )
    def test_hash_mid_pattern_rejected(self, pattern, topic):
        with pytest.raises(NetworkError):
            topic_matches(pattern, topic)

    def test_hash_matches_parent_level(self):
        # MQTT spec: "a/#" matches "a" itself, not only children.
        assert topic_matches("a/#", "a")
        assert topic_matches("a/#", "a/b/c")
        assert not topic_matches("a/#", "b")

    def test_empty_levels_are_real_levels(self):
        assert topic_matches("a//b", "a//b")
        assert topic_matches("a/+/b", "a//b")
        assert not topic_matches("a/b", "a//b")
        assert topic_matches("/a", "/a")
        assert not topic_matches("/a", "a")

    def test_plus_matches_exactly_one_level(self):
        assert topic_matches("+", "a")
        assert not topic_matches("+", "a/b")
        assert topic_matches("+/+", "a/b")
        assert not topic_matches("+/+", "a")
        assert not topic_matches("a/+", "a/b/c")

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_bad_filter_rejected_at_subscribe(self, kind):
        _, _, endpoint, _ = make_world(kind)
        with pytest.raises(NetworkError):
            endpoint.subscribe("a/#/b", lambda t, p: None)


# -- backend contract ---------------------------------------------------


class TestBackendContract:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_publish_routes_to_subscriber(self, kind):
        sim, _, endpoint, link = make_world(kind)
        got = []
        endpoint.subscribe("meter/+/report", lambda t, p: got.append((t, p)))
        connect(sim, endpoint, link)
        assert link.connected
        assert link.publish("meter/dev/report", b"data")
        sim.run()
        assert got == [("meter/dev/report", b"data")]
        assert endpoint.messages_routed == 1
        assert link.stats["published"] == 1

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_delivery_is_scheduled_not_synchronous(self, kind):
        sim, _, endpoint, link = make_world(kind)
        got = []
        endpoint.subscribe("t", lambda t, p: got.append(sim.now))
        connect(sim, endpoint, link)
        sent_at = sim.now
        link.publish("t", 1)
        assert got == []  # nothing delivered inside publish()
        sim.run()
        assert got and got[0] > sent_at

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_publish_while_disconnected_raises(self, kind):
        _, _, _, link = make_world(kind)
        with pytest.raises(NetworkError):
            link.publish("t", b"x")

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_unsubscribe_unknown_rejected(self, kind):
        _, _, endpoint, _ = make_world(kind)
        with pytest.raises(NetworkError):
            endpoint.unsubscribe("meter/+/report", lambda t, p: None)

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_qos1_exhausts_retries_during_link_blackout(self, kind):
        """An outage makes QoS 1 burn its whole budget, then give up."""
        sim, _, endpoint, link = make_world(kind)
        got = []
        endpoint.subscribe("t", lambda t, p: got.append(p))
        connect(sim, endpoint, link)
        injector = LinkFaultInjector("uplink:dev", sim.rng.stream("fault"))
        link.set_fault_injector(injector)
        injector.start_blackout()
        assert link.publish("t", b"lost", qos=QoS.AT_LEAST_ONCE) is False
        # 1 initial attempt + 5 retries, every one blocked by the blackout.
        assert injector.counters.get("uplink:dev.blackout_losses") == 6
        assert link.stats["dropped"] == 1
        injector.end_blackout()
        assert link.publish("t", b"after", qos=QoS.AT_LEAST_ONCE) is True
        sim.run()
        assert got == [b"after"]

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_environment_blackout_via_transport(self, kind):
        """transport.set_fault_injector reaches every link on any backend."""
        sim, transport, endpoint, link = make_world(kind)
        endpoint.subscribe("t", lambda t, p: None)
        connect(sim, endpoint, link)
        injector = LinkFaultInjector("radio", sim.rng.stream("fault"))
        transport.set_fault_injector(injector)
        injector.start_blackout()
        assert link.publish("t", b"lost") is False
        injector.end_blackout()
        assert link.publish("t", b"through") is True

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_downed_endpoint_drops_everything(self, kind):
        sim, _, endpoint, link = make_world(kind)
        got = []
        endpoint.subscribe("t", lambda t, p: got.append(p))
        connect(sim, endpoint, link)
        endpoint.set_down(True)
        assert endpoint.down
        link.publish("t", b"x")  # accepted by the link, dropped at the host
        sim.run_until(sim.now + 5.0)
        assert got == []
        assert endpoint.messages_dropped >= 1
        endpoint.set_down(False)
        link.publish("t", b"y")
        sim.run()
        assert got == [b"y"]

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_radio_prefers_closer_access_points(self, kind):
        sim = Simulator(seed=0)
        transport = make_transport(kind, sim)
        radio = transport.make_radio(_FakeProcess(sim))
        assert radio.rssi_dbm(2.0) > radio.rssi_dbm(80.0)
        assert radio.scan_duration_s() > 0
        assert radio.association_duration_s() > 0

    def test_direct_link_latency_and_loss_validated(self):
        with pytest.raises(ConfigError):
            DirectTransport(latency_s=-0.1)
        with pytest.raises(ConfigError):
            DirectTransport(loss_p=1.0)
        with pytest.raises(ConfigError):
            DirectTransport(connect_s=0.0)

    def test_direct_lossy_link_drops_some_qos0(self):
        sim = Simulator(seed=2)
        transport = DirectTransport(loss_p=0.5)
        endpoint = transport.make_endpoint(sim, "agg")
        link = transport.make_link(sim, "dev")
        connect(sim, endpoint, link)
        delivered = sum(
            link.publish("t", i, qos=QoS.AT_MOST_ONCE) for i in range(200)
        )
        assert 40 < delivered < 160
        assert link.stats["dropped"] > 0

    def test_mqtt_transport_without_channel_is_endpoint_only(self):
        sim = Simulator(seed=0)
        transport = MqttTransport()
        endpoint = transport.make_endpoint(sim, "agg")
        assert endpoint.name == "agg-broker"
        with pytest.raises(ConfigError):
            transport.make_link(sim, "dev")
        with pytest.raises(ConfigError):
            transport.set_fault_injector(None)

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_describe_names_the_backend(self, kind):
        sim = Simulator(seed=0)
        transport = make_transport(kind, sim)
        assert transport.describe()["kind"] == kind


class _FakeProcess:
    """Just enough of the Process surface for Transport.make_radio."""

    def __init__(self, sim):
        self._sim = sim
        self.name = "dev"

    def rng(self, purpose):
        return self._sim.rng.stream(f"{self.name}:{purpose}")


# -- spec round-trip ----------------------------------------------------


class TestTransportSpec:
    def test_defaults_to_mqtt(self):
        assert TransportSpec().kind == "mqtt"
        assert paper_testbed_spec().transport.kind == "mqtt"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            TransportSpec(kind="carrier-pigeon")

    @pytest.mark.parametrize(
        "spec",
        [
            TransportSpec(),
            TransportSpec(kind="direct"),
            TransportSpec(kind="direct", latency_s=0.002, loss_p=0.1, connect_s=0.5),
        ],
    )
    def test_round_trips_losslessly(self, spec):
        assert TransportSpec.from_dict(spec.to_dict()) == spec

    def test_scenario_spec_round_trips_transport(self):
        spec = paper_testbed_spec(seed=3, transport=TransportSpec(kind="direct"))
        restored = ScenarioSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.transport.kind == "direct"

    def test_legacy_dict_without_transport_defaults_to_mqtt(self):
        data = paper_testbed_spec().to_dict()
        del data["transport"]
        assert ScenarioSpec.from_dict(data).transport == TransportSpec()

    def test_paper_testbed_runs_end_to_end_on_direct_backend(self):
        from repro.runtime.build import build

        scenario = build(paper_testbed_spec(seed=5, transport=TransportSpec(kind="direct")))
        assert scenario.channel is None  # no radio environment on direct
        scenario.run_until(12.0)
        assert scenario.chain.height > 0
        for device in scenario.devices.values():
            assert device.acked_count > 0

    def test_build_makes_matching_backend(self):
        sim = Simulator(seed=0)
        assert isinstance(TransportSpec().build(object()), MqttTransport)
        direct = TransportSpec(kind="direct", latency_s=0.001).build(None)
        assert isinstance(direct, DirectTransport)
        assert direct.latency_s == 0.001
        del sim
